//! Parsed trace events.
//!
//! `camelot_obs::TraceEvent::to_json` renders flat JSON objects whose
//! string values are static identifiers — no escapes, no nesting, no
//! floats. [`ScopeEvent`] is the parsed form of one such line, kept
//! *lossless*: every field is retained in order, so a merged timeline
//! re-renders byte-compatibly with the original except for the
//! corrected `us` value (the original is preserved as `raw_us`).
//!
//! The parser is hand-rolled because the workspace deliberately
//! carries no serde; it accepts exactly the flat shape the tracer
//! emits and returns `None` for anything else rather than guessing.

use std::fmt::Write as FmtWrite;

use camelot_obs::TraceEvent;

/// A scalar JSON value as the tracer emits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    U64(u64),
    Str(String),
    Bool(bool),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed trace event. The well-known header fields (`seq`,
/// `site`, `us`, `family`, `ev`) are lifted into struct fields; every
/// other key rides in `fields` in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeEvent {
    /// Per-site emission sequence number.
    pub seq: u64,
    /// Site that emitted the event.
    pub site: u32,
    /// Timestamp in µs. After a skew-aware merge this is in the
    /// reference site's clock frame; before, it is the site-local
    /// value.
    pub us: u64,
    /// The original site-local timestamp (equals `us` until a merge
    /// rebases the event).
    pub raw_us: u64,
    /// Family label (e.g. `"F1.3"`); `None` for site-level events.
    pub family: Option<String>,
    /// Event name (`"datagram_send"`, `"log_durable"`, ...).
    pub ev: String,
    /// Remaining payload fields in original order.
    pub fields: Vec<(String, Value)>,
}

impl ScopeEvent {
    /// Parses one JSONL line. Returns `None` for malformed lines or
    /// lines missing the header fields (callers skip those — a trace
    /// file may carry a non-event header line first).
    pub fn parse(line: &str) -> Option<ScopeEvent> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut seq = None;
        let mut site = None;
        let mut us = None;
        let mut raw_us = None;
        let mut family = None;
        let mut ev = None;
        let mut fields = Vec::new();
        let mut rest = body;
        while !rest.is_empty() {
            rest = rest.trim_start_matches(',');
            if rest.is_empty() {
                break;
            }
            let key_body = rest.strip_prefix('"')?;
            let key_end = key_body.find('"')?;
            let key = &key_body[..key_end];
            rest = key_body[key_end + 1..].strip_prefix(':')?;
            let value;
            if let Some(s) = rest.strip_prefix('"') {
                let end = s.find('"')?;
                value = Value::Str(s[..end].to_string());
                rest = &s[end + 1..];
            } else {
                let end = rest.find(',').unwrap_or(rest.len());
                let tok = &rest[..end];
                value = match tok {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => Value::U64(tok.parse().ok()?),
                };
                rest = &rest[end..];
            }
            match key {
                "seq" => seq = value.as_u64(),
                "site" => site = value.as_u64(),
                "us" => us = value.as_u64(),
                "raw_us" => raw_us = value.as_u64(),
                "family" => family = value.as_str().map(str::to_string),
                "ev" => ev = value.as_str().map(str::to_string),
                _ => fields.push((key.to_string(), value)),
            }
        }
        let us = us?;
        Some(ScopeEvent {
            seq: seq?,
            site: site? as u32,
            us,
            raw_us: raw_us.unwrap_or(us),
            family,
            ev: ev?,
            fields,
        })
    }

    /// The parsed form of an in-process [`TraceEvent`] (chaos and the
    /// benches hold real events; trace files hold their JSONL).
    pub fn from_trace(ev: &TraceEvent) -> ScopeEvent {
        ScopeEvent::parse(&ev.to_json()).expect("tracer JSON is parseable")
    }

    /// A payload field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A numeric payload field by name.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.field(name).and_then(Value::as_u64)
    }

    /// A string payload field by name.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.field(name).and_then(Value::as_str)
    }

    /// Re-renders the event as one JSON object. Field order matches
    /// the tracer's; a rebased event additionally carries `raw_us`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"site\":{},\"us\":{}",
            self.seq, self.site, self.us
        );
        if self.raw_us != self.us {
            let _ = write!(s, ",\"raw_us\":{}", self.raw_us);
        }
        if let Some(f) = &self.family {
            let _ = write!(s, ",\"family\":\"{f}\"");
        }
        let _ = write!(s, ",\"ev\":\"{}\"", self.ev);
        for (k, v) in &self.fields {
            match v {
                Value::U64(n) => {
                    let _ = write!(s, ",\"{k}\":{n}");
                }
                Value::Str(t) => {
                    let _ = write!(s, ",\"{k}\":\"{t}\"");
                }
                Value::Bool(b) => {
                    let _ = write!(s, ",\"{k}\":{b}");
                }
            }
        }
        s.push('}');
        s
    }
}

/// Parses a JSONL blob, skipping unparseable lines (headers, blank
/// lines).
pub fn parse_jsonl(text: &str) -> Vec<ScopeEvent> {
    text.lines().filter_map(ScopeEvent::parse).collect()
}

/// Renders events back to JSON Lines.
pub fn to_jsonl(events: &[ScopeEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 96);
    for e in events {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_obs::{TraceEventKind, TraceRing};
    use camelot_types::{FamilyId, SiteId};
    use std::time::Instant;

    #[test]
    fn roundtrips_every_tracer_shape() {
        let ring = TraceRing::new(SiteId(2), 64, Instant::now());
        let fam = FamilyId {
            origin: SiteId(1),
            seq: 3,
        };
        ring.emit(Some(fam), TraceEventKind::Begin);
        ring.emit(
            Some(fam),
            TraceEventKind::DatagramSend {
                to: SiteId(3),
                msg: "Prepare",
                piggyback: 2,
            },
        );
        ring.emit(
            Some(fam),
            TraceEventKind::LogEnqueue {
                purpose: "commit",
                lazy: true,
            },
        );
        ring.emit(None, TraceEventKind::BatchStart { upto: 4096 });
        ring.emit(None, TraceEventKind::Crash);
        for ev in ring.drain() {
            let json = ev.to_json();
            let parsed = ScopeEvent::parse(&json).expect("parseable");
            assert_eq!(parsed.to_json(), json, "lossless roundtrip");
        }
    }

    #[test]
    fn rebased_events_keep_the_raw_timestamp() {
        let mut e =
            ScopeEvent::parse("{\"seq\":1,\"site\":2,\"us\":500,\"ev\":\"begin\"}").unwrap();
        assert_eq!(e.raw_us, 500);
        e.us = 1700;
        let json = e.to_json();
        assert!(json.contains("\"us\":1700"), "{json}");
        assert!(json.contains("\"raw_us\":500"), "{json}");
        let back = ScopeEvent::parse(&json).unwrap();
        assert_eq!(back.us, 1700);
        assert_eq!(back.raw_us, 500);
    }

    #[test]
    fn rejects_garbage() {
        assert!(ScopeEvent::parse("").is_none());
        assert!(ScopeEvent::parse("not json").is_none());
        assert!(ScopeEvent::parse("{\"seq\":1}").is_none());
        assert!(ScopeEvent::parse("{\"seq\":1,\"site\":2,\"us\":x,\"ev\":\"b\"}").is_none());
    }
}
