//! The metrics scraper: polls every site (and optionally the
//! supervisor) over the ctrl protocol on a fixed cadence and renders
//! git-SHA-stamped time-series JSONL snapshots.
//!
//! Sites export cheap monotonic counters and histograms; *rates* are
//! derived here by differencing consecutive scrapes, so the data
//! plane never pays for rate bookkeeping. A counter that moves
//! backwards means the site restarted between scrapes — the collector
//! flags the sample and clamps the delta to zero instead of emitting
//! a huge negative rate.
//!
//! Connections are opened fresh (with a short retry) on every scrape:
//! a supervisor restart re-binds a site's ctrl port, so cached
//! connections would silently go stale. Callers re-resolve the target
//! list each scrape (e.g. from the supervisor's address board).

use std::collections::HashMap;
use std::fmt::Write as FmtWrite;
use std::net::SocketAddr;
use std::time::Instant;

use camelot_net::{FaultStats, TransportStats};
use camelot_node::ctrl::{CtrlClient, SiteStatsWire};
use camelot_obs::{PhaseSnapshot, ProtocolPhaseSnapshot};

use crate::stamp::stamp_json;

/// One site to scrape.
#[derive(Debug, Clone, Copy)]
pub struct ScrapeTarget {
    pub site: u32,
    pub addr: SocketAddr,
}

/// One site's sample within a scrape. `up == false` means the ctrl
/// connection failed (site down or restarting); the remaining fields
/// are then empty.
#[derive(Debug, Clone, Default)]
pub struct SiteScrape {
    pub site: u32,
    pub up: bool,
    /// Counter went backwards since the previous scrape — the site
    /// restarted and its counters reset.
    pub restarted: bool,
    pub stats: Option<SiteStatsWire>,
    /// Per-second rates derived from counter deltas, keyed by the
    /// counter names of [`SiteStatsWire::fields`].
    pub rates: Vec<(&'static str, f64)>,
    pub phases: Option<PhaseSnapshot>,
    pub proto_phases: Option<ProtocolPhaseSnapshot>,
    pub transport: Option<TransportStats>,
    pub faults: Option<FaultStats>,
}

impl SiteScrape {
    /// A derived rate by counter name (events per second).
    pub fn rate(&self, name: &str) -> f64 {
        self.rates
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }
}

/// One collector tick across the whole cluster.
#[derive(Debug, Clone, Default)]
pub struct ScrapeSnapshot {
    /// Milliseconds since the collector started.
    pub at_ms: u64,
    pub sites: Vec<SiteScrape>,
    /// Supervisor restart counts `(site, restarts)`, when a
    /// supervisor address was given and reachable.
    pub restarts: Option<Vec<(u32, u32)>>,
}

impl ScrapeSnapshot {
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(s, "{{\"at_ms\":{},\"sites\":[", self.at_ms);
        for (i, site) in self.sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"site\":{},\"up\":{},\"restarted\":{}",
                site.site, site.up, site.restarted
            );
            if let Some(stats) = &site.stats {
                s.push_str(",\"counters\":{");
                for (j, (name, value)) in stats.fields().iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{name}\":{value}");
                }
                s.push('}');
            }
            if !site.rates.is_empty() {
                s.push_str(",\"rates\":{");
                for (j, (name, rate)) in site.rates.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{name}\":{rate:.1}");
                }
                s.push('}');
            }
            if let Some(phases) = &site.phases {
                s.push_str(",\"phases\":{");
                for (j, (phase, hist)) in phases.non_empty().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{}", phase.name(), hist.summary_json());
                }
                s.push('}');
            }
            if let Some(proto) = &site.proto_phases {
                s.push_str(",\"protocols\":{");
                for (j, (protocol, snap)) in proto.non_empty().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{{", protocol.name());
                    for (k, (phase, hist)) in snap.non_empty().enumerate() {
                        if k > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "\"{}\":{}", phase.name(), hist.summary_json());
                    }
                    s.push('}');
                }
                s.push('}');
            }
            if let Some(t) = &site.transport {
                let _ = write!(
                    s,
                    ",\"transport\":{{\"sends\":{},\"send_failures\":{},\"connects\":{},\
                     \"connect_failures\":{},\"enqueued\":{},\"queue_drops\":{},\
                     \"queue_depth\":{},\"max_queue_depth\":{}}}",
                    t.sends,
                    t.send_failures,
                    t.connects,
                    t.connect_failures,
                    t.enqueued,
                    t.queue_drops,
                    t.queue_depth,
                    t.max_queue_depth
                );
            }
            if let Some(f) = &site.faults {
                let _ = write!(
                    s,
                    ",\"faults\":{{\"drops\":{},\"delays\":{},\"duplicates\":{},\"crashes\":{},\
                     \"partition_drops\":{},\"skewed_timers\":{}}}",
                    f.drops, f.delays, f.duplicates, f.crashes, f.partition_drops, f.skewed_timers
                );
            }
            s.push('}');
        }
        s.push(']');
        if let Some(restarts) = &self.restarts {
            s.push_str(",\"supervisor\":{\"restarts\":[");
            for (i, (site, n)) in restarts.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"site\":{site},\"restarts\":{n}}}");
            }
            s.push_str("]}");
        }
        s.push('}');
        s
    }

    /// Total trace-ring drops across all scraped sites — the
    /// protocol-cost auditor and soak treat nonzero as a defect
    /// (dropped events mean unauditable transactions).
    pub fn total_trace_dropped(&self) -> u64 {
        self.sites
            .iter()
            .filter_map(|s| s.stats.as_ref())
            .map(|s| s.trace_dropped)
            .sum()
    }
}

/// Derives per-second rates from two counter snapshots. Returns the
/// rates and whether any counter moved backwards (restart between
/// scrapes); negative deltas are clamped to zero.
pub fn derive_rates(
    prev: &SiteStatsWire,
    cur: &SiteStatsWire,
    dt_secs: f64,
) -> (Vec<(&'static str, f64)>, bool) {
    let mut restarted = false;
    let mut rates = Vec::with_capacity(32);
    if dt_secs <= 0.0 {
        return (rates, false);
    }
    for ((name, p), (_, c)) in prev.fields().iter().zip(cur.fields().iter()) {
        let delta = if c >= p {
            c - p
        } else {
            restarted = true;
            0
        };
        rates.push((*name, delta as f64 / dt_secs));
    }
    (rates, restarted)
}

/// The stateful scraper: remembers the previous counters per site so
/// each [`Collector::scrape`] yields rates.
pub struct Collector {
    started: Instant,
    last_scrape: Option<Instant>,
    prev: HashMap<u32, SiteStatsWire>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    pub fn new() -> Collector {
        Collector {
            started: Instant::now(),
            last_scrape: None,
            prev: HashMap::new(),
        }
    }

    /// The JSONL header line opening a scrape series: provenance
    /// stamp plus the target description the series was taken with.
    pub fn header_json(config_text: &str) -> String {
        format!(
            "{{\"scrape_series\":{{\"stamp\":{}}}}}",
            stamp_json(config_text)
        )
    }

    /// Polls every target once (fresh connections, short retry) and
    /// the supervisor if given. Unreachable sites appear with
    /// `up: false` rather than vanishing from the series.
    pub fn scrape(
        &mut self,
        targets: &[ScrapeTarget],
        supervisor: Option<SocketAddr>,
    ) -> ScrapeSnapshot {
        let now = Instant::now();
        let dt = self
            .last_scrape
            .map(|t| now.duration_since(t).as_secs_f64())
            .unwrap_or(0.0);
        self.last_scrape = Some(now);
        let mut snap = ScrapeSnapshot {
            at_ms: now.duration_since(self.started).as_millis() as u64,
            ..Default::default()
        };
        for t in targets {
            let mut site = SiteScrape {
                site: t.site,
                ..Default::default()
            };
            if let Ok(mut ctrl) = CtrlClient::connect_with(t.addr, 2) {
                if let Ok(stats) = ctrl.engine_stats() {
                    site.up = true;
                    if let Some(prev) = self.prev.get(&t.site) {
                        let (rates, restarted) = derive_rates(prev, &stats, dt);
                        site.rates = rates;
                        site.restarted = restarted;
                    }
                    self.prev.insert(t.site, stats);
                    site.stats = Some(stats);
                    if let Ok((phases, proto)) = ctrl.phase_stats() {
                        site.phases = Some(phases);
                        site.proto_phases = Some(proto);
                    }
                    site.transport = ctrl.transport_stats().ok();
                    site.faults = ctrl.fault_stats().ok();
                }
            }
            snap.sites.push(site);
        }
        if let Some(addr) = supervisor {
            if let Ok(mut ctrl) = CtrlClient::connect_with(addr, 2) {
                if let Ok(counts) = ctrl.restart_stats() {
                    snap.restarts = Some(
                        counts
                            .iter()
                            .map(|e| (e.site.0, e.restarts))
                            .collect(),
                    );
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_types::SiteId;

    fn stats_with(commits: u64, datagrams: u64) -> SiteStatsWire {
        let mut s = SiteStatsWire::zeroed(SiteId(1));
        s.commits = commits;
        s.datagrams = datagrams;
        s
    }

    #[test]
    fn rates_are_per_second_deltas() {
        let (rates, restarted) = derive_rates(&stats_with(100, 1000), &stats_with(150, 1400), 2.0);
        assert!(!restarted);
        let rate = |name: &str| {
            rates
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(rate("commits"), 25.0);
        assert_eq!(rate("datagrams"), 200.0);
        assert_eq!(rate("aborts"), 0.0);
    }

    #[test]
    fn counter_reset_flags_restart_and_clamps() {
        let (rates, restarted) = derive_rates(&stats_with(100, 1000), &stats_with(5, 1400), 1.0);
        assert!(restarted, "backwards counter means the site restarted");
        let commits = rates.iter().find(|(k, _)| *k == "commits").unwrap().1;
        assert_eq!(commits, 0.0, "negative delta clamps to zero");
    }

    #[test]
    fn snapshot_json_is_wellformed_for_down_sites() {
        let snap = ScrapeSnapshot {
            at_ms: 1500,
            sites: vec![SiteScrape {
                site: 3,
                ..Default::default()
            }],
            restarts: Some(vec![(3, 2)]),
        };
        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"at_ms\":1500,\"sites\":[{\"site\":3,\"up\":false,\"restarted\":false}],\
             \"supervisor\":{\"restarts\":[{\"site\":3,\"restarts\":2}]}}"
        );
    }

    #[test]
    fn header_carries_a_stamp() {
        let h = Collector::header_json("3 sites");
        assert!(
            h.starts_with("{\"scrape_series\":{\"stamp\":{\"git_sha\""),
            "{h}"
        );
    }
}
