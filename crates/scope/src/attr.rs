//! Critical-path latency attribution.
//!
//! The paper accounts for transaction response time by *costing* each
//! protocol's constituent operations (datagrams, log forces, platter
//! writes — Tables 1–3). This module produces the measured analogue
//! from a merged cluster timeline: for every committed family it
//! decomposes the commit window (`commit_call` → `resolved` at the
//! coordinator) into named segments, then reports per-protocol
//! percentiles per segment.
//!
//! The decomposition is an *exact partition*: segment intervals are
//! clipped to the commit window and swept in priority order, so every
//! microsecond of the window is charged to exactly one segment and
//! the per-family segment sum always equals the end-to-end latency.
//! Priorities (highest first):
//!
//! 1. `platter_write` — site-level `batch_start`→`batch_durable`
//!    windows that overlap one of the family's force windows (the
//!    disk was the reason the force waited);
//! 2. `force_wait`   — non-lazy `log_enqueue`→`log_durable`, i.e.
//!    time blocked on durability beyond the platter write itself
//!    (batch formation, group-commit queueing);
//! 3. `prepare_wait` — subordinate-side `datagram_recv`→`server_vote`
//!    (shard lock acquisition and prepare processing, including
//!    parked prepares under queued execution);
//! 4. `net_transit`  — matched `datagram_send`→`datagram_recv` pairs;
//! 5. `coord_think`  — the unclaimed remainder: coordinator-side
//!    protocol bookkeeping and scheduler time.
//!
//! A sixth segment from the paper's taxonomy, queue wait *before*
//! `commit_call`, is outside the commit window by construction; it is
//! scraped directly from the sites' `Phase::QueueWait` histograms by
//! [`crate::collect`] rather than re-derived here.

use std::collections::BTreeMap;
use std::fmt::Write as FmtWrite;

use crate::event::ScopeEvent;
use crate::merge::match_pairs;

/// Trace-derived segment names, in sweep priority order.
pub const SEGMENTS: [&str; 5] = [
    "platter_write",
    "force_wait",
    "prepare_wait",
    "net_transit",
    "coord_think",
];

/// Percentile summary of one sample set (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegStats {
    pub n: usize,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub mean: u64,
    pub max: u64,
}

impl SegStats {
    fn from_samples(samples: &mut [u64]) -> SegStats {
        if samples.is_empty() {
            return SegStats {
                n: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                mean: 0,
                max: 0,
            };
        }
        samples.sort_unstable();
        let pct = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        SegStats {
            n: samples.len(),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            mean: samples.iter().sum::<u64>() / samples.len() as u64,
            max: *samples.last().unwrap(),
        }
    }

    fn json_body(&self) -> String {
        format!(
            "\"n\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"mean_us\":{},\"max_us\":{}",
            self.n, self.p50, self.p95, self.p99, self.mean, self.max
        )
    }
}

/// One protocol's decomposition: end-to-end commit latency plus the
/// per-segment stats, over every committed family classified as this
/// protocol.
#[derive(Debug, Clone)]
pub struct ProtocolAttribution {
    pub protocol: &'static str,
    pub families: usize,
    pub e2e: SegStats,
    /// `(segment name, stats)` in [`SEGMENTS`] order.
    pub segments: Vec<(&'static str, SegStats)>,
}

impl ProtocolAttribution {
    /// Sum of the per-segment medians — the acceptance check compares
    /// this against the end-to-end p50 (exact for means by the
    /// partition property; medians track closely on the tight
    /// localhost distributions the benches produce).
    pub fn median_sum(&self) -> u64 {
        self.segments.iter().map(|(_, s)| s.p50).sum()
    }
}

/// Cluster-wide attribution: one entry per protocol observed.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    pub protocols: Vec<ProtocolAttribution>,
}

impl Attribution {
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"attribution\":[");
        for (i, p) in self.protocols.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"protocol\":\"{}\",\"families\":{},\"e2e\":{{{}}},\"median_sum_us\":{},\"segments\":[",
                p.protocol,
                p.families,
                p.e2e.json_body(),
                p.median_sum()
            );
            for (j, (name, st)) in p.segments.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"segment\":\"{name}\",{}}}", st.json_body());
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// A candidate interval on the corrected time axis with its sweep
/// priority (lower wins).
struct Iv {
    start: u64,
    end: u64,
    prio: usize,
}

/// Classifies a committed family the same way the protocol-cost
/// auditor does: commit mode from `commit_call`, then force count.
fn classify(mode: &str, forces: usize, lazies: usize) -> &'static str {
    match mode {
        "2pc" if forces == 0 => "read_only",
        "2pc" if lazies > 0 => "2pc_delayed",
        "2pc" => "2pc_standard",
        _ if forces <= 1 => "non_blocking_read",
        _ => "non_blocking",
    }
}

/// Decomposes every committed family in a merged timeline. Expects
/// *corrected* events (site-level batch events included — they carry
/// the platter windows); families without a `commit_call`/`resolved`
/// pair at one site are skipped (aborted, in flight, or truncated by
/// the ring).
pub fn attribute(events: &[ScopeEvent]) -> Attribution {
    // Site-level platter windows: batch_start paired with the next
    // batch_durable at the same site, in corrected time order.
    let mut batch_windows: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    {
        let mut open: BTreeMap<u32, u64> = BTreeMap::new();
        let mut site_events: Vec<&ScopeEvent> = events
            .iter()
            .filter(|e| e.ev == "batch_start" || e.ev == "batch_durable")
            .collect();
        site_events.sort_by_key(|e| (e.us, e.seq));
        for e in site_events {
            match e.ev.as_str() {
                "batch_start" => {
                    open.insert(e.site, e.us);
                }
                _ => {
                    if let Some(start) = open.remove(&e.site) {
                        batch_windows.entry(e.site).or_default().push((start, e.us));
                    }
                }
            }
        }
    }

    let mut families: BTreeMap<&str, Vec<&ScopeEvent>> = BTreeMap::new();
    for e in events {
        if let Some(f) = &e.family {
            families.entry(f).or_default().push(e);
        }
    }

    // Per-(protocol, segment) samples; one sample per family.
    let mut e2e_samples: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut seg_samples: BTreeMap<(&'static str, &'static str), Vec<u64>> = BTreeMap::new();

    for evs in families.values() {
        let mut evs: Vec<&ScopeEvent> = evs.clone();
        evs.sort_by_key(|e| (e.us, e.site, e.seq));
        let Some(call) = evs.iter().find(|e| e.ev == "commit_call") else {
            continue;
        };
        let Some(resolved) = evs
            .iter()
            .find(|e| e.ev == "resolved" && e.site == call.site && e.us >= call.us)
        else {
            continue;
        };
        // The tracer renders the Outcome enum's Debug form
        // ("Committed"); synthetic traces tend to write lowercase.
        if !resolved
            .str_field("outcome")
            .is_some_and(|o| o.eq_ignore_ascii_case("committed"))
        {
            continue;
        }
        let (t0, t1) = (call.us, resolved.us);
        if t1 <= t0 {
            continue;
        }
        let mode = call.str_field("mode").unwrap_or("2pc").to_string();

        let mut ivs: Vec<Iv> = Vec::new();

        // Force windows (priority 1), matched k-th enqueue to k-th
        // durable per (site, purpose); only non-lazy forces block.
        let mut force_windows: Vec<(u32, u64, u64)> = Vec::new();
        let mut forces = 0usize;
        let mut lazies = 0usize;
        {
            let mut opens: BTreeMap<(u32, String), Vec<u64>> = BTreeMap::new();
            for e in &evs {
                let lazy = e
                    .field("lazy")
                    .map(|v| v == &crate::event::Value::Bool(true));
                match e.ev.as_str() {
                    "log_enqueue" if lazy == Some(true) => lazies += 1,
                    "log_enqueue" if lazy == Some(false) => {
                        forces += 1;
                        let purpose = e.str_field("purpose").unwrap_or("").to_string();
                        opens.entry((e.site, purpose)).or_default().push(e.us);
                    }
                    "log_durable" if lazy == Some(false) => {
                        let purpose = e.str_field("purpose").unwrap_or("").to_string();
                        if let Some(starts) = opens.get_mut(&(e.site, purpose)) {
                            if !starts.is_empty() {
                                let start = starts.remove(0);
                                force_windows.push((e.site, start, e.us));
                                ivs.push(Iv {
                                    start,
                                    end: e.us,
                                    prio: 1,
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Platter windows (priority 0): batch windows on any site
        // that overlap one of this family's force windows.
        for &(site, fs, fe) in &force_windows {
            if let Some(wins) = batch_windows.get(&site) {
                for &(bs, be) in wins {
                    if bs < fe && be > fs {
                        ivs.push(Iv {
                            start: bs,
                            end: be,
                            prio: 0,
                        });
                    }
                }
            }
        }

        // Prepare wait (priority 2): each subordinate server_vote,
        // charged from the latest datagram_recv at that site before
        // it (the request whose processing produced the vote).
        for (i, e) in evs.iter().enumerate() {
            if e.ev != "server_vote" {
                continue;
            }
            if let Some(recv) = evs[..i]
                .iter()
                .rev()
                .find(|r| r.ev == "datagram_recv" && r.site == e.site)
            {
                ivs.push(Iv {
                    start: recv.us,
                    end: e.us,
                    prio: 2,
                });
            }
        }

        // Network transit (priority 3): matched send/recv pairs.
        let owned: Vec<ScopeEvent> = evs.iter().map(|e| (*e).clone()).collect();
        for (s, r) in match_pairs(&owned) {
            ivs.push(Iv {
                start: owned[s].us,
                end: owned[r].us,
                prio: 3,
            });
        }

        // Priority sweep over [t0, t1]: at every elementary interval
        // the highest-priority covering segment wins; uncovered time
        // is coordinator think time. This partitions the window
        // exactly, so the family's segment sum equals t1 − t0.
        let mut cuts: Vec<u64> = vec![t0, t1];
        for iv in &ivs {
            cuts.push(iv.start.clamp(t0, t1));
            cuts.push(iv.end.clamp(t0, t1));
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut totals = [0u64; 5];
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let seg = ivs
                .iter()
                .filter(|iv| iv.start <= a && iv.end >= b)
                .map(|iv| iv.prio)
                .min()
                .unwrap_or(4);
            totals[seg] += b - a;
        }

        let proto = classify(&mode, forces, lazies);
        e2e_samples.entry(proto).or_default().push(t1 - t0);
        for (i, name) in SEGMENTS.iter().enumerate() {
            seg_samples
                .entry((proto, name))
                .or_default()
                .push(totals[i]);
        }
    }

    let mut out = Attribution::default();
    for (proto, mut e2e) in e2e_samples {
        let segments = SEGMENTS
            .iter()
            .map(|name| {
                let mut v = seg_samples.remove(&(proto, name)).unwrap_or_default();
                (*name, SegStats::from_samples(&mut v))
            })
            .collect();
        out.protocols.push(ProtocolAttribution {
            protocol: proto,
            families: e2e.len(),
            e2e: SegStats::from_samples(&mut e2e),
            segments,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    /// One hand-built 2PC family with known interval geometry:
    ///   commit window [1000, 11000] at site 1 (e2e 10000);
    ///   Prepare 1200→1500 to site 2 (net 300);
    ///   prepare processing 1500→1800 (prepare_wait 300);
    ///   vote 1800→2100 back (net 300);
    ///   force 2200→5000 at site 1, with a platter batch 3000→4500
    ///   overlapping it (platter 1500, force_wait 1300);
    ///   remainder 6300 is coordinator think time.
    fn one_family() -> &'static str {
        "{\"seq\":0,\"site\":1,\"us\":900,\"family\":\"F1.0\",\"ev\":\"begin\"}\n\
         {\"seq\":1,\"site\":1,\"us\":1000,\"family\":\"F1.0\",\"ev\":\"commit_call\",\"mode\":\"2pc\"}\n\
         {\"seq\":2,\"site\":1,\"us\":1200,\"family\":\"F1.0\",\"ev\":\"datagram_send\",\"to\":2,\"msg\":\"Prepare\",\"piggyback\":0}\n\
         {\"seq\":0,\"site\":2,\"us\":1500,\"family\":\"F1.0\",\"ev\":\"datagram_recv\",\"from\":1,\"msg\":\"Prepare\"}\n\
         {\"seq\":1,\"site\":2,\"us\":1800,\"family\":\"F1.0\",\"ev\":\"server_vote\",\"server\":2,\"vote\":\"commit\"}\n\
         {\"seq\":2,\"site\":2,\"us\":1800,\"family\":\"F1.0\",\"ev\":\"datagram_send\",\"to\":1,\"msg\":\"VoteCommit\",\"piggyback\":0}\n\
         {\"seq\":3,\"site\":1,\"us\":2200,\"family\":\"F1.0\",\"ev\":\"log_enqueue\",\"purpose\":\"commit\",\"lazy\":false}\n\
         {\"seq\":4,\"site\":1,\"us\":2100,\"family\":\"F1.0\",\"ev\":\"datagram_recv\",\"from\":2,\"msg\":\"VoteCommit\"}\n\
         {\"seq\":5,\"site\":1,\"us\":3000,\"ev\":\"batch_start\",\"upto\":10}\n\
         {\"seq\":6,\"site\":1,\"us\":4500,\"ev\":\"batch_durable\",\"upto\":10}\n\
         {\"seq\":7,\"site\":1,\"us\":5000,\"family\":\"F1.0\",\"ev\":\"log_durable\",\"purpose\":\"commit\",\"lazy\":false}\n\
         {\"seq\":8,\"site\":1,\"us\":11000,\"family\":\"F1.0\",\"ev\":\"resolved\",\"outcome\":\"committed\"}\n"
    }

    #[test]
    fn partitions_the_commit_window_exactly() {
        let attr = attribute(&parse_jsonl(one_family()));
        assert_eq!(attr.protocols.len(), 1);
        let p = &attr.protocols[0];
        assert_eq!(p.protocol, "2pc_standard");
        assert_eq!(p.families, 1);
        assert_eq!(p.e2e.p50, 10_000);
        let seg = |name: &str| {
            p.segments
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.p50)
                .unwrap()
        };
        assert_eq!(seg("net_transit"), 600);
        assert_eq!(seg("prepare_wait"), 300);
        assert_eq!(seg("platter_write"), 1_500);
        assert_eq!(seg("force_wait"), 1_300);
        assert_eq!(seg("coord_think"), 6_300);
        // The partition property: segment sum == end-to-end, exactly.
        assert_eq!(p.median_sum(), p.e2e.p50);
        let json = attr.to_json();
        assert!(json.contains("\"protocol\":\"2pc_standard\""), "{json}");
        assert!(json.contains("\"median_sum_us\":10000"), "{json}");
    }

    #[test]
    fn classifies_protocols_from_the_trace() {
        assert_eq!(classify("2pc", 0, 0), "read_only");
        assert_eq!(classify("2pc", 2, 1), "2pc_delayed");
        assert_eq!(classify("2pc", 2, 0), "2pc_standard");
        assert_eq!(classify("nb", 1, 0), "non_blocking_read");
        assert_eq!(classify("nb", 3, 0), "non_blocking");
    }

    #[test]
    fn skips_aborted_and_incomplete_families() {
        let text = "{\"seq\":0,\"site\":1,\"us\":100,\"family\":\"F1.1\",\"ev\":\"commit_call\",\"mode\":\"2pc\"}\n\
                    {\"seq\":1,\"site\":1,\"us\":300,\"family\":\"F1.1\",\"ev\":\"resolved\",\"outcome\":\"aborted\"}\n\
                    {\"seq\":0,\"site\":2,\"us\":50,\"family\":\"F1.2\",\"ev\":\"begin\"}\n";
        assert!(attribute(&parse_jsonl(text)).protocols.is_empty());
    }
}
