//! `camelot-scope` — the cluster-wide observability plane.
//!
//! PR 4's observability is per-process: each site owns a trace ring
//! and phase histograms, and nobody can answer "where did this
//! commit's 12 ms go?" once the cluster runs as real OS processes
//! with independent clocks. This crate closes that gap in three
//! layers, mirroring the paper's method of *accounting* for response
//! time (§4.1, Tables 1–3):
//!
//! - [`collect`] — a scraper that polls every site (and the
//!   supervisor) over the existing ctrl protocol on a fixed cadence,
//!   pulling phase histograms, engine/queue counters, transport and
//!   fault stats into git-SHA-stamped time-series JSONL snapshots.
//!   Rates are derived in the collector by differencing scrapes, so
//!   sites keep exporting cheap monotonic counters.
//! - [`merge`] — a skew-aware trace merge. Each site process stamps
//!   trace events against its own epoch, so raw timestamps from
//!   different processes are incomparable. The merger estimates
//!   per-site clock maps (offset *and* rate, so a PR 9 `set_skew`-fast
//!   clock is handled) from matched send/receive datagram pairs,
//!   rebases every event into one reference frame, and repairs any
//!   residual happens-before inversions message edges prove.
//! - [`attr`] — critical-path attribution: walk each merged
//!   per-family timeline and decompose commit latency into named
//!   segments (network transit, prepare wait, force wait, platter
//!   write, coordinator think time), reported as per-protocol
//!   p50/p95/p99 — the measured analogue of the paper's cost model.
//!
//! [`event`] is the shared substrate: a lossless parsed form of the
//! trace JSONL that `camelot-obs` renders, so merged timelines
//! re-render byte-compatibly (plus corrected timestamps).

pub mod attr;
pub mod collect;
pub mod event;
pub mod merge;
pub mod stamp;

pub use attr::{attribute, Attribution, ProtocolAttribution, SegStats};
pub use collect::{Collector, ScrapeSnapshot, ScrapeTarget, SiteScrape};
pub use event::{parse_jsonl, ScopeEvent, Value};
pub use merge::{merge_skew_aware, ClockMap, MergedTimeline};
pub use stamp::{config_hash, git_sha, stamp_json};
