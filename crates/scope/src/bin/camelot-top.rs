//! `camelot-top` — a one-screen live view of a running cluster.
//!
//! ```text
//! camelot-top --ctrl 1=ADDR [--ctrl 2=ADDR ...] [--supervisor ADDR]
//!             [--every-ms 1000] [--iters 0]
//! ```
//!
//! Redraws a per-site table every tick: liveness, commit/abort/force/
//! datagram rates (derived by the collector from counter deltas),
//! send-queue depth, trace-ring drops, supervisor restart counts, and
//! commit latency percentiles from the phase histograms. `--iters N`
//! stops after N refreshes (0 runs until interrupted) so scripts and
//! smoke tests can take a bounded number of frames.

use std::net::SocketAddr;
use std::time::Duration;

use camelot_obs::Phase;
use camelot_scope::{Collector, ScrapeTarget};

fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets = Vec::new();
    for w in args.windows(2) {
        if w[0] == "--ctrl" {
            match w[1].split_once('=') {
                Some((site, addr)) => match (site.parse(), addr.parse()) {
                    (Ok(site), Ok(addr)) => targets.push(ScrapeTarget { site, addr }),
                    _ => {
                        eprintln!("camelot-top: bad --ctrl {}", w[1]);
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("camelot-top: --ctrl wants SITE=ADDR");
                    std::process::exit(2);
                }
            }
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: camelot-top --ctrl SITE=ADDR... [--supervisor ADDR] \
             [--every-ms 1000] [--iters 0]"
        );
        std::process::exit(2);
    }
    let supervisor: Option<SocketAddr> = opt(&args, "--supervisor").and_then(|s| s.parse().ok());
    let every_ms: u64 = opt(&args, "--every-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let iters: u64 = opt(&args, "--iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let mut collector = Collector::new();
    let mut tick = 0u64;
    loop {
        let snap = collector.scrape(&targets, supervisor);
        // ANSI clear + home; a dumb terminal just sees frames appended.
        print!("\x1b[2J\x1b[H");
        println!(
            "camelot-top  t=+{:.1}s  {} sites",
            snap.at_ms as f64 / 1000.0,
            snap.sites.len()
        );
        println!(
            "{:>4} {:>4} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>8} {:>10} {:>10}",
            "SITE",
            "UP",
            "COMMIT/s",
            "ABORT/s",
            "FORCE/s",
            "DGRAM/s",
            "QDEPTH",
            "DROPS",
            "RESTART",
            "2PC_P50us",
            "NB_P50us"
        );
        for s in &snap.sites {
            let restarts = snap
                .restarts
                .as_ref()
                .and_then(|r| r.iter().find(|(site, _)| *site == s.site))
                .map(|(_, n)| n.to_string())
                .unwrap_or_else(|| "-".to_string());
            let (p2pc, pnb) = s
                .phases
                .as_ref()
                .map(|p| {
                    (
                        p.get(Phase::Commit2pc).percentile(0.50),
                        p.get(Phase::CommitNb).percentile(0.50),
                    )
                })
                .unwrap_or((0, 0));
            println!(
                "{:>4} {:>4} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7} {:>6} {:>8} {:>10} {:>10}",
                s.site,
                if s.up { "yes" } else { "NO" },
                s.rate("commits"),
                s.rate("aborts"),
                s.rate("forces"),
                s.rate("datagrams"),
                s.transport.as_ref().map(|t| t.queue_depth).unwrap_or(0),
                s.stats.as_ref().map(|st| st.trace_dropped).unwrap_or(0),
                restarts,
                p2pc,
                pnb
            );
        }
        tick += 1;
        if iters > 0 && tick >= iters {
            break;
        }
        std::thread::sleep(Duration::from_millis(every_ms));
    }
}
