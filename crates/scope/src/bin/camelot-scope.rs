//! Cluster observability driver.
//!
//! ```text
//! camelot-scope scrape --ctrl 1=ADDR [--ctrl 2=ADDR ...] [--supervisor ADDR]
//!                      [--every-ms 250] [--for-ms 5000] [--out FILE]
//! camelot-scope merge  [--out FILE] TRACE.jsonl...
//! camelot-scope attrib [--out FILE] TRACE.jsonl...
//! camelot-scope smoke  [--sites 3] [--transport udp] [--txns 240]
//!                      [--out-dir DIR]
//! ```
//!
//! `scrape` polls the given sites on a cadence and appends one JSON
//! snapshot per tick (header line first). `merge` rebases per-site
//! trace files into one skew-corrected cluster timeline. `attrib`
//! merges and then decomposes commit latency into critical-path
//! segments. `smoke` is the self-contained CI check: it spawns a real
//! socket cluster, drives a mixed workload, and asserts the whole
//! plane end to end — well-formed scrapes with nonzero phase counts,
//! zero trace drops, a clean happens-before merge, and per-protocol
//! segment medians that sum to within tolerance of the measured
//! end-to-end commit p50.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use camelot_node::ctrl::CtrlClient;
use camelot_node::procs::{distribute_peers, sibling_site_bin, wait_quiesce, SiteProc, SpawnSpec};
use camelot_obs::Phase;
use camelot_scope::{
    attribute, merge_skew_aware, parse_jsonl, Attribution, Collector, MergedTimeline,
    ScrapeSnapshot, ScrapeTarget,
};
use camelot_types::{ObjectId, ServerId, SiteId};

const SRV: ServerId = ServerId(1);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("scrape") => cmd_scrape(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("attrib") => cmd_attrib(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        _ => {
            eprintln!(
                "usage: camelot-scope scrape --ctrl SITE=ADDR... [--supervisor ADDR] \
                 [--every-ms N] [--for-ms N] [--out FILE]\n\
                 \x20      camelot-scope merge  [--out FILE] TRACE.jsonl...\n\
                 \x20      camelot-scope attrib [--out FILE] TRACE.jsonl...\n\
                 \x20      camelot-scope smoke  [--sites N] [--transport udp|tcp] \
                 [--txns N] [--out-dir DIR]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// `--flag value` lookup over a raw arg slice.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// All values of a repeatable `--flag value`.
fn opts(args: &[String], flag: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

/// Positional (non-flag) arguments.
fn positionals(args: &[String]) -> Vec<String> {
    let flags_with_value = [
        "--ctrl",
        "--supervisor",
        "--every-ms",
        "--for-ms",
        "--out",
        "--out-dir",
        "--sites",
        "--transport",
        "--txns",
    ];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if flags_with_value.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            out.push(a.clone());
        }
    }
    out
}

fn parse_targets(args: &[String]) -> Result<Vec<ScrapeTarget>, String> {
    let mut targets = Vec::new();
    for spec in opts(args, "--ctrl") {
        let (site, addr) = spec
            .split_once('=')
            .ok_or_else(|| format!("--ctrl wants SITE=ADDR, got {spec}"))?;
        targets.push(ScrapeTarget {
            site: site.parse().map_err(|_| format!("bad site id {site}"))?,
            addr: addr.parse().map_err(|_| format!("bad address {addr}"))?,
        });
    }
    if targets.is_empty() {
        return Err("at least one --ctrl SITE=ADDR is required".into());
    }
    Ok(targets)
}

fn write_out(out: Option<String>, content: &str) -> i32 {
    match out {
        Some(path) => {
            if let Some(dir) = Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("camelot-scope: write {path}: {e}");
                return 1;
            }
            0
        }
        None => {
            print!("{content}");
            0
        }
    }
}

fn cmd_scrape(args: &[String]) -> i32 {
    let targets = match parse_targets(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("camelot-scope: {e}");
            return 2;
        }
    };
    let supervisor: Option<SocketAddr> = opt(args, "--supervisor").and_then(|s| s.parse().ok());
    let every_ms: u64 = opt(args, "--every-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    let for_ms: u64 = opt(args, "--for-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let config = format!("scrape targets={} every_ms={every_ms}", targets.len());
    let mut series = Collector::header_json(&config);
    series.push('\n');
    let mut collector = Collector::new();
    let deadline = Instant::now() + Duration::from_millis(for_ms);
    loop {
        let snap = collector.scrape(&targets, supervisor);
        series.push_str(&snap.to_json());
        series.push('\n');
        if Instant::now() + Duration::from_millis(every_ms) > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(every_ms));
    }
    write_out(opt(args, "--out"), &series)
}

fn read_traces(files: &[String]) -> Result<Vec<camelot_scope::ScopeEvent>, String> {
    if files.is_empty() {
        return Err("no trace files given".into());
    }
    let mut events = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("read {f}: {e}"))?;
        events.extend(parse_jsonl(&text));
    }
    Ok(events)
}

fn cmd_merge(args: &[String]) -> i32 {
    match read_traces(&positionals(args)) {
        Ok(events) => {
            let merged = merge_skew_aware(events);
            eprintln!(
                "camelot-scope: merged {} events from {} sites into frame of site {}",
                merged.events.len(),
                merged.maps.len(),
                merged.reference
            );
            write_out(opt(args, "--out"), &merged.to_jsonl())
        }
        Err(e) => {
            eprintln!("camelot-scope: {e}");
            2
        }
    }
}

fn cmd_attrib(args: &[String]) -> i32 {
    match read_traces(&positionals(args)) {
        Ok(events) => {
            let merged = merge_skew_aware(events);
            let attr = attribute(&merged.events);
            if attr.protocols.is_empty() {
                eprintln!("camelot-scope: no committed families in the trace");
            }
            let mut out = attr.to_json();
            out.push('\n');
            write_out(opt(args, "--out"), &out)
        }
        Err(e) => {
            eprintln!("camelot-scope: {e}");
            2
        }
    }
}

/// One mixed-workload transaction, the same shape the socket bench
/// drives: read-only every 5th, non-blocking every 3rd, everything
/// else a distributed two-site write.
fn run_txn(ctrls: &mut [CtrlClient], sites: u32, i: u64) -> bool {
    let home = SiteId(i as u32 % sites + 1);
    let h = (home.0 - 1) as usize;
    let remote_site = SiteId(home.0 % sites + 1);
    let r = (remote_site.0 - 1) as usize;
    let read_only = i.is_multiple_of(5);
    let nonblocking = i % 3 == 1;
    let key = ObjectId(i % 32);
    let key2 = ObjectId((i * 7 + 3) % 32);
    let Ok(tid) = ctrls[h].begin() else {
        return false;
    };
    let mut participants: Vec<SiteId> = vec![];
    let body = (|ctrls: &mut [CtrlClient]| -> Result<(), ()> {
        if read_only {
            ctrls[h].read(&tid, SRV, key).map_err(|_| ())?;
            ctrls[h].read(&tid, SRV, key2).map_err(|_| ())?;
        } else {
            ctrls[h]
                .write(&tid, SRV, key, i.to_le_bytes().to_vec())
                .map_err(|_| ())?;
            if r != h {
                ctrls[r]
                    .write(&tid, SRV, key2, i.to_le_bytes().to_vec())
                    .map_err(|_| ())?;
                participants = vec![home, remote_site];
            }
        }
        Ok(())
    })(ctrls);
    if body.is_err() {
        let _ = ctrls[h].abort(&tid, participants);
        return false;
    }
    match ctrls[h].commit(&tid, nonblocking, participants.clone()) {
        Ok(committed) => committed,
        Err(_) => {
            let _ = ctrls[h].abort(&tid, participants);
            false
        }
    }
}

struct SmokeFailure(String);

fn check_snapshot(snap: &ScrapeSnapshot, want_sites: usize) -> Result<(), SmokeFailure> {
    if snap.sites.len() != want_sites {
        return Err(SmokeFailure(format!(
            "scrape saw {} sites, want {want_sites}",
            snap.sites.len()
        )));
    }
    for s in &snap.sites {
        if !s.up {
            return Err(SmokeFailure(format!("site {} down during scrape", s.site)));
        }
        if s.stats.is_none() || s.phases.is_none() {
            return Err(SmokeFailure(format!("site {} scrape incomplete", s.site)));
        }
    }
    Ok(())
}

fn run_smoke(args: &[String]) -> Result<String, SmokeFailure> {
    let sites: u32 = opt(args, "--sites")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let transport = opt(args, "--transport").unwrap_or_else(|| "udp".to_string());
    let txns: u64 = opt(args, "--txns")
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);
    let out_dir = PathBuf::from(
        opt(args, "--out-dir").unwrap_or_else(|| "target/tmp/scope-smoke".to_string()),
    );
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| SmokeFailure(format!("create {}: {e}", out_dir.display())))?;

    let bin = sibling_site_bin().map_err(|e| SmokeFailure(e.to_string()))?;
    let extra = vec![
        "--call-timeout-ms".to_string(),
        "2000".to_string(),
        "--trace-capacity".to_string(),
        "65536".to_string(),
    ];
    let mut procs: Vec<SiteProc> = Vec::new();
    for i in 1..=sites {
        procs.push(
            SiteProc::spawn(&SpawnSpec {
                bin: &bin,
                site: SiteId(i),
                transport: &transport,
                log_dir: None,
                fast: true,
                extra: &extra,
            })
            .map_err(|e| SmokeFailure(format!("spawn site {i}: {e}")))?,
        );
    }
    distribute_peers(&mut procs).map_err(|e| SmokeFailure(format!("distribute peers: {e}")))?;
    let targets: Vec<ScrapeTarget> = procs
        .iter()
        .map(|p| ScrapeTarget {
            site: p.id.0,
            addr: p.handshake.ctrl,
        })
        .collect();
    let mut ctrls: Vec<CtrlClient> = Vec::new();
    for p in &procs {
        ctrls.push(
            CtrlClient::connect(p.handshake.ctrl)
                .map_err(|e| SmokeFailure(format!("ctrl connect: {e}")))?,
        );
    }

    // Workload in thirds with a scrape between each, so the series
    // shows rates ramping rather than one final dump.
    let mut collector = Collector::new();
    let config = format!("smoke sites={sites} transport={transport} txns={txns}");
    let mut series = Collector::header_json(&config);
    series.push('\n');
    let mut snapshots: Vec<ScrapeSnapshot> = Vec::new();
    let mut commits = 0u64;
    for chunk in 0..3u64 {
        let lo = txns * chunk / 3;
        let hi = txns * (chunk + 1) / 3;
        for i in lo..hi {
            if run_txn(&mut ctrls, sites, i) {
                commits += 1;
            }
        }
        let snap = collector.scrape(&targets, None);
        series.push_str(&snap.to_json());
        series.push('\n');
        snapshots.push(snap);
    }
    wait_quiesce(&mut procs, Duration::from_secs(10));
    let final_snap = collector.scrape(&targets, None);
    series.push_str(&final_snap.to_json());
    series.push('\n');
    std::fs::write(out_dir.join("scrape.jsonl"), &series)
        .map_err(|e| SmokeFailure(format!("write scrape.jsonl: {e}")))?;

    // Scrape assertions: every snapshot well-formed, final one shows
    // the workload in the phase histograms and no trace drops.
    for snap in snapshots.iter().chain(std::iter::once(&final_snap)) {
        check_snapshot(snap, procs.len())?;
    }
    if commits < txns / 2 {
        return Err(SmokeFailure(format!(
            "only {commits}/{txns} transactions committed"
        )));
    }
    let commit_samples: u64 = final_snap
        .sites
        .iter()
        .filter_map(|s| s.phases.as_ref())
        .map(|p| p.get(Phase::Commit2pc).count() + p.get(Phase::CommitNb).count())
        .sum();
    if commit_samples == 0 {
        return Err(SmokeFailure(
            "no commit phase samples in the final scrape".into(),
        ));
    }
    if final_snap.total_trace_dropped() > 0 {
        return Err(SmokeFailure(format!(
            "{} trace events dropped — raise --trace-capacity",
            final_snap.total_trace_dropped()
        )));
    }

    // Drain every ring (chunked under the hood), merge, attribute.
    let mut events = Vec::new();
    for c in ctrls.iter_mut() {
        let jsonl = c
            .drain_trace()
            .map_err(|e| SmokeFailure(format!("drain trace: {e}")))?;
        events.extend(parse_jsonl(&jsonl));
    }
    let merged = merge_skew_aware(events);
    std::fs::write(out_dir.join("cluster-timeline.jsonl"), merged.to_jsonl())
        .map_err(|e| SmokeFailure(format!("write timeline: {e}")))?;
    if merged.happens_before_violations() > 0 {
        return Err(SmokeFailure(format!(
            "{} happens-before violations after merge",
            merged.happens_before_violations()
        )));
    }
    let attr = attribute(&merged.events);
    std::fs::write(out_dir.join("attribution.json"), attr.to_json())
        .map_err(|e| SmokeFailure(format!("write attribution: {e}")))?;

    for p in procs {
        p.shutdown();
    }
    summarize(&merged, &attr, commits, txns)
}

/// The acceptance check plus a human-readable summary: for every
/// protocol with a meaningful sample, summed segment medians must
/// land within 10% of the end-to-end commit p50 (with a small
/// absolute floor so a sub-millisecond p50 doesn't demand
/// microsecond-exact medians).
fn summarize(
    merged: &MergedTimeline,
    attr: &Attribution,
    commits: u64,
    txns: u64,
) -> Result<String, SmokeFailure> {
    if attr.protocols.is_empty() {
        return Err(SmokeFailure(
            "attribution found no committed families".into(),
        ));
    }
    let mut lines = vec![format!(
        "camelot-scope smoke: {commits}/{txns} committed, {} merged events, {} protocols",
        merged.events.len(),
        attr.protocols.len()
    )];
    let mut checked = 0;
    for p in &attr.protocols {
        let sum = p.median_sum();
        let p50 = p.e2e.p50;
        let tolerance = (p50 / 10).max(250);
        let delta = sum.abs_diff(p50);
        lines.push(format!(
            "  {:<17} families={:<4} e2e_p50={}us segment_median_sum={}us delta={}us",
            p.protocol, p.families, p50, sum, delta
        ));
        if p.families >= 20 {
            checked += 1;
            if delta > tolerance {
                return Err(SmokeFailure(format!(
                    "{}: segment medians sum to {sum}us but e2e p50 is {p50}us \
                     (delta {delta}us > tolerance {tolerance}us)",
                    p.protocol
                )));
            }
        }
    }
    if checked == 0 {
        return Err(SmokeFailure(
            "no protocol reached 20 families; attribution check is vacuous".into(),
        ));
    }
    Ok(lines.join("\n"))
}

fn cmd_smoke(args: &[String]) -> i32 {
    match run_smoke(args) {
        Ok(summary) => {
            println!("{summary}");
            0
        }
        Err(SmokeFailure(msg)) => {
            eprintln!("camelot-scope smoke: FAIL: {msg}");
            1
        }
    }
}
