//! Skew-aware cross-process trace merge.
//!
//! Rings created by one in-process cluster share an epoch, but each
//! `camelot-site` *process* creates its own — so raw `us` values from
//! different processes differ by arbitrary epoch offsets, and a PR 9
//! `set_skew` fault means clocks can differ in *rate* too. Merging by
//! raw timestamp would interleave nonsense.
//!
//! The fix is the classic NTP-style estimator, applied offline to the
//! traffic the protocol already traced. Every matched datagram pair
//! (the k-th `datagram_send` from site A to site B for a family/msg
//! matches the k-th `datagram_recv` at B from A) gives one delay
//! sample per direction:
//!
//! ```text
//! forward:  recv_B − send_A =  off + transit
//! backward: recv_A − send_B = −off + transit
//! ```
//!
//! Minimum-filtering each direction cancels queueing noise, and the
//! half-difference cancels (symmetric) transit, leaving the offset.
//! Estimating that offset in an early and a late time window gives
//! its drift rate, i.e. an affine map `corrected = scale·local +
//! offset` per site — which is exactly what a rate-skewed clock
//! needs. Sites with no direct traffic to the reference compose maps
//! along a BFS of the who-talked-to-whom graph.
//!
//! After rebasing, residual inversions that message edges prove
//! impossible (a receive before its send) are repaired by clamping
//! receives forward and restoring per-site sequence monotonicity, so
//! downstream consumers can rely on happens-before order.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt::Write as FmtWrite;

use crate::event::ScopeEvent;

/// An affine map from one site's local clock into the reference
/// site's frame: `corrected_us = scale * local_us + offset_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockMap {
    pub site: u32,
    pub scale: f64,
    pub offset_us: f64,
    /// Matched datagram pairs that fed the estimate (0 means the site
    /// was unreachable in the message graph and kept its local clock).
    pub pairs: usize,
}

impl ClockMap {
    fn identity(site: u32) -> ClockMap {
        ClockMap {
            site,
            scale: 1.0,
            offset_us: 0.0,
            pairs: 0,
        }
    }

    fn apply(&self, us: u64) -> u64 {
        (self.scale * us as f64 + self.offset_us).max(0.0).round() as u64
    }

    /// `self ∘ inner`: first `inner` (y → x), then `self` (x → ref).
    fn compose(&self, inner: &ClockMap) -> ClockMap {
        ClockMap {
            site: inner.site,
            scale: self.scale * inner.scale,
            offset_us: self.scale * inner.offset_us + self.offset_us,
            pairs: inner.pairs,
        }
    }
}

/// The merged cluster timeline: events in corrected happens-before
/// order plus the clock maps that produced it.
#[derive(Debug, Clone)]
pub struct MergedTimeline {
    /// Site whose clock frame everyone was rebased into.
    pub reference: u32,
    pub maps: Vec<ClockMap>,
    pub events: Vec<ScopeEvent>,
}

impl MergedTimeline {
    /// A JSON header describing the merge (reference frame and
    /// per-site clock estimates).
    pub fn header_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"merge\":{{\"reference\":{},\"sites\":[",
            self.reference
        );
        for (i, m) in self.maps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"site\":{},\"scale\":{:.6},\"offset_us\":{:.1},\"pairs\":{}}}",
                m.site, m.scale, m.offset_us, m.pairs
            );
        }
        let _ = write!(s, "]}}}}");
        s
    }

    /// Header line plus one corrected event per line — the single
    /// cluster timeline artifact soak and chaos dump on violation.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str(&self.header_json());
        s.push('\n');
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// The clock map for one site, if it was present in the trace.
    pub fn map_for(&self, site: u32) -> Option<&ClockMap> {
        self.maps.iter().find(|m| m.site == site)
    }

    /// Matched message edges whose corrected receive is not strictly
    /// after its send. The merge repairs these to a fixpoint, so
    /// nonzero here means the trace itself is inconsistent (e.g. two
    /// drains interleaved) — smoke and soak assert zero.
    pub fn happens_before_violations(&self) -> usize {
        match_pairs(&self.events)
            .into_iter()
            .filter(|&(s, r)| self.events[r].us <= self.events[s].us)
            .count()
    }
}

/// One direction's delay samples between a site pair, indexed by the
/// frame-owner side's local time so windows split consistently.
#[derive(Default)]
struct PairSamples {
    /// `(t_x_local, recv_y_local − send_x_local)` for x→y messages.
    forward: Vec<(f64, f64)>,
    /// `(t_x_local, recv_x_local − send_y_local)` for y→x messages.
    backward: Vec<(f64, f64)>,
}

/// Matched `(send_index, recv_index)` pairs into an event slice.
/// Shared with [`crate::attr`], which charges the same pairs to the
/// `net_transit` segment.
pub(crate) fn match_pairs(events: &[ScopeEvent]) -> Vec<(usize, usize)> {
    // k-th send ↔ k-th recv per (family, from, to, msg). Events
    // arrive in arbitrary order; sort each side by (site seq) first
    // so "k-th" means emission order.
    type Key = (Option<String>, u32, u32, String);
    let mut sends: HashMap<Key, Vec<usize>> = HashMap::new();
    let mut recvs: HashMap<Key, Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.ev.as_str() {
            "datagram_send" => {
                if let (Some(to), Some(msg)) = (e.u64_field("to"), e.str_field("msg")) {
                    sends
                        .entry((e.family.clone(), e.site, to as u32, msg.to_string()))
                        .or_default()
                        .push(i);
                }
            }
            "datagram_recv" => {
                if let (Some(from), Some(msg)) = (e.u64_field("from"), e.str_field("msg")) {
                    recvs
                        .entry((e.family.clone(), from as u32, e.site, msg.to_string()))
                        .or_default()
                        .push(i);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for (key, mut s) in sends {
        let Some(mut r) = recvs.remove(&key) else {
            continue;
        };
        s.sort_by_key(|&i| events[i].seq);
        r.sort_by_key(|&i| events[i].seq);
        out.extend(s.into_iter().zip(r));
    }
    out
}

/// Offset of y relative to x from one window's samples:
/// `off = (min forward − min backward) / 2` when both directions are
/// present; a single direction assumes near-zero transit (biased but
/// better than nothing).
fn window_offset(fwd: &[f64], bwd: &[f64]) -> Option<f64> {
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    match (fwd.is_empty(), bwd.is_empty()) {
        (false, false) => Some((min(fwd) - min(bwd)) / 2.0),
        (false, true) => Some(min(fwd)),
        (true, false) => Some(-min(bwd)),
        (true, true) => None,
    }
}

/// Estimates the affine map taking y-local µs into x's frame from the
/// pair's delay samples, or `None` without any samples.
fn estimate_map(y: u32, samples: &PairSamples) -> Option<ClockMap> {
    let npairs = samples.forward.len() + samples.backward.len();
    if npairs == 0 {
        return None;
    }
    // Split on the median x-time into an early and a late window; a
    // per-window offset estimate needs samples on both sides to see
    // drift, otherwise fall back to one constant offset.
    let mut times: Vec<f64> = samples
        .forward
        .iter()
        .chain(samples.backward.iter())
        .map(|(t, _)| *t)
        .collect();
    times.sort_by(f64::total_cmp);
    let mid = times[times.len() / 2];
    let split = |v: &[(f64, f64)]| -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let (mut d_lo, mut d_hi, mut t_lo, mut t_hi) = (vec![], vec![], vec![], vec![]);
        for (t, d) in v {
            if *t < mid {
                d_lo.push(*d);
                t_lo.push(*t);
            } else {
                d_hi.push(*d);
                t_hi.push(*t);
            }
        }
        (d_lo, d_hi, t_lo, t_hi)
    };
    let (f_lo, f_hi, ft_lo, ft_hi) = split(&samples.forward);
    let (b_lo, b_hi, bt_lo, bt_hi) = split(&samples.backward);
    let mean = |a: &[f64], b: &[f64]| -> Option<f64> {
        let n = a.len() + b.len();
        (n > 0).then(|| (a.iter().sum::<f64>() + b.iter().sum::<f64>()) / n as f64)
    };
    let lo = window_offset(&f_lo, &b_lo).zip(mean(&ft_lo, &bt_lo));
    let hi = window_offset(&f_hi, &b_hi).zip(mean(&ft_hi, &bt_hi));
    // Drift-aware path: offsets at two well-separated window centres
    // give the offset's slope m in x-time; inverting
    // `y = t + o1 + m (t − T1)` yields the affine y→x map.
    if let (Some((o1, t1)), Some((o2, t2))) = (lo, hi) {
        if t2 - t1 > 1.0 {
            let m = (o2 - o1) / (t2 - t1);
            let denom = 1.0 + m;
            // A slope near −1 would mean y's clock is frozen; that's
            // estimator noise, not physics — fall back to constant.
            if denom.abs() > 0.1 {
                return Some(ClockMap {
                    site: y,
                    scale: 1.0 / denom,
                    offset_us: -(o1 - m * t1) / denom,
                    pairs: npairs,
                });
            }
        }
    }
    let off = window_offset(
        &samples.forward.iter().map(|(_, d)| *d).collect::<Vec<_>>(),
        &samples.backward.iter().map(|(_, d)| *d).collect::<Vec<_>>(),
    )?;
    Some(ClockMap {
        site: y,
        scale: 1.0,
        offset_us: -off,
        pairs: npairs,
    })
}

/// Merges per-site trace events (site-local timestamps) into one
/// timeline in the reference site's clock frame, ordered by corrected
/// time with message-edge happens-before repaired. The reference is
/// the lowest site id present.
pub fn merge_skew_aware(mut events: Vec<ScopeEvent>) -> MergedTimeline {
    let sites: BTreeSet<u32> = events.iter().map(|e| e.site).collect();
    let Some(&reference) = sites.iter().next() else {
        return MergedTimeline {
            reference: 0,
            maps: vec![],
            events,
        };
    };
    let pairs = match_pairs(&events);

    // Delay samples per unordered site pair, indexed by the
    // lower-site ("x") local time.
    let mut samples: BTreeMap<(u32, u32), PairSamples> = BTreeMap::new();
    for &(s, r) in &pairs {
        let (send, recv) = (&events[s], &events[r]);
        let (a, b) = (send.site, recv.site);
        if a == b {
            continue;
        }
        let (x, y) = (a.min(b), a.max(b));
        let entry = samples.entry((x, y)).or_default();
        if a == x {
            // x → y message: x-side time is the send stamp.
            entry
                .forward
                .push((send.us as f64, recv.us as f64 - send.us as f64));
        } else {
            // y → x message: x-side time is the recv stamp.
            entry
                .backward
                .push((recv.us as f64, recv.us as f64 - send.us as f64));
        }
    }

    // BFS from the reference, composing pairwise maps along the way.
    let mut maps: BTreeMap<u32, ClockMap> = BTreeMap::new();
    maps.insert(reference, ClockMap::identity(reference));
    let mut queue = VecDeque::from([reference]);
    while let Some(x) = queue.pop_front() {
        let x_map = maps[&x];
        for (&(lo, hi), pair) in &samples {
            let y = if lo == x {
                hi
            } else if hi == x {
                lo
            } else {
                continue;
            };
            if maps.contains_key(&y) {
                continue;
            }
            // `samples` is keyed with the lower id as the frame
            // owner; when x is the higher id, flip the estimate by
            // inverting the affine map.
            let est = if lo == x {
                estimate_map(y, pair)
            } else {
                estimate_map(lo, pair).map(|m| ClockMap {
                    site: y,
                    scale: 1.0 / m.scale,
                    offset_us: -m.offset_us / m.scale,
                    pairs: m.pairs,
                })
            };
            if let Some(m) = est {
                maps.insert(y, x_map.compose(&m));
                queue.push_back(y);
            }
        }
    }
    // Unreachable sites (no matched traffic) keep their local clock.
    for &s in &sites {
        maps.entry(s).or_insert_with(|| ClockMap::identity(s));
    }

    // Rebase.
    for e in events.iter_mut() {
        e.us = maps[&e.site].apply(e.raw_us);
    }

    // Per-site emission order is ground truth: corrected time must
    // be monotone in seq at each site.
    let site_monotone = |events: &mut [ScopeEvent]| {
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (events[i].site, events[i].seq));
        let mut last: HashMap<u32, u64> = HashMap::new();
        for i in order {
            let e = &mut events[i];
            let floor = last.entry(e.site).or_insert(0);
            if e.us < *floor {
                e.us = *floor;
            }
            *floor = e.us;
        }
    };
    site_monotone(&mut events);

    // Message edges prove happens-before: a receive at or before its
    // send is residual estimator error. Clamp receives forward, then
    // restore per-site monotonicity, to a bounded fixpoint.
    for _ in 0..10 {
        let mut changed = false;
        for &(s, r) in &pairs {
            let floor = events[s].us + 1;
            if events[r].us < floor {
                events[r].us = floor;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        site_monotone(&mut events);
    }

    events.sort_by_key(|e| (e.us, e.site, e.seq));
    MergedTimeline {
        reference,
        maps: maps.into_values().collect(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    /// Deterministic pseudo-random transit in [lo, hi) µs.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self, lo: u64, hi: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + (self.0 >> 33) % (hi - lo)
        }
    }

    /// Builds a three-site trace in "true" (reference) time, then
    /// stamps each site's events through its local clock:
    ///   site 1: local = t                      (reference)
    ///   site 2: local = t + 2_000_000         (constant offset)
    ///   site 3: local = 2 t + 500_000         (2× fast, PR 9 set_skew style)
    /// Returns the shuffled site-local events plus the matched
    /// (send, recv) true-time pairs for order checks.
    fn synthetic_traces() -> Vec<ScopeEvent> {
        let local = |site: u32, t: u64| -> u64 {
            match site {
                1 => t,
                2 => t + 2_000_000,
                3 => 2 * t + 500_000,
                _ => unreachable!(),
            }
        };
        let mut seqs = [0u64; 4];
        let mut lines = Vec::new();
        let mut emit = |site: u32, t: u64, family: &str, body: &str| {
            let seq = seqs[site as usize];
            seqs[site as usize] += 1;
            lines.push(format!(
                "{{\"seq\":{seq},\"site\":{site},\"us\":{},\"family\":\"{family}\",{body}}}",
                local(site, t)
            ));
        };
        let mut rng = Lcg(42);
        // 40 two-phase families spread over ~2 s so the estimator's
        // two windows get real separation; each family runs
        // coordinator site 1 against subordinates 2 and 3.
        for f in 0..40u64 {
            let t0 = 10_000 + f * 50_000;
            let fam = format!("F1.{f}");
            emit(1, t0, &fam, "\"ev\":\"begin\"");
            emit(1, t0 + 200, &fam, "\"ev\":\"commit_call\",\"mode\":\"2pc\"");
            for sub in [2u32, 3u32] {
                let send = t0 + 300 + sub as u64;
                let transit = rng.next(200, 1500);
                emit(
                    1,
                    send,
                    &fam,
                    &format!(
                        "\"ev\":\"datagram_send\",\"to\":{sub},\"msg\":\"Prepare\",\"piggyback\":0"
                    ),
                );
                let recv = send + transit;
                emit(
                    sub,
                    recv,
                    &fam,
                    "\"ev\":\"datagram_recv\",\"from\":1,\"msg\":\"Prepare\"",
                );
                let vote_send = recv + rng.next(100, 900);
                let vote_transit = rng.next(200, 1500);
                emit(
                    sub,
                    vote_send,
                    &fam,
                    "\"ev\":\"datagram_send\",\"to\":1,\"msg\":\"VoteCommit\",\"piggyback\":0",
                );
                emit(
                    1,
                    vote_send + vote_transit,
                    &fam,
                    &format!("\"ev\":\"datagram_recv\",\"from\":{sub},\"msg\":\"VoteCommit\""),
                );
            }
            emit(
                1,
                t0 + 9_000,
                &fam,
                "\"ev\":\"resolved\",\"outcome\":\"committed\"",
            );
        }
        let mut events = parse_jsonl(&lines.join("\n"));
        // Shuffle deterministically: merge must not depend on input order.
        let mut rng = Lcg(7);
        for i in (1..events.len()).rev() {
            let j = (rng.next(0, (i + 1) as u64)) as usize;
            events.swap(i, j);
        }
        events
    }

    #[test]
    fn recovers_injected_offsets_and_rate() {
        let merged = merge_skew_aware(synthetic_traces());
        assert_eq!(merged.reference, 1);
        let m2 = merged.map_for(2).expect("site 2 mapped");
        let m3 = merged.map_for(3).expect("site 3 mapped");
        assert!(m2.pairs > 0 && m3.pairs > 0);
        // Site 2: local = t + 2e6 → corrected = local − 2e6.
        assert!(
            (m2.scale - 1.0).abs() < 0.02,
            "site 2 scale {} should be ~1",
            m2.scale
        );
        assert!(
            (m2.offset_us + 2_000_000.0).abs() < 5_000.0,
            "site 2 offset {} should be ~-2e6",
            m2.offset_us
        );
        // Site 3: local = 2t + 5e5 → corrected = local/2 − 2.5e5.
        assert!(
            (m3.scale - 0.5).abs() < 0.025,
            "site 3 scale {} should be ~0.5 (2x fast clock)",
            m3.scale
        );
        assert!(
            (m3.offset_us + 250_000.0).abs() < 15_000.0,
            "site 3 offset {} should be ~-2.5e5",
            m3.offset_us
        );
    }

    #[test]
    fn merged_order_respects_happens_before() {
        let merged = merge_skew_aware(synthetic_traces());
        // Every matched message edge: corrected recv strictly after
        // corrected send.
        let pairs = match_pairs(&merged.events);
        assert!(
            pairs.len() >= 150,
            "expected matched pairs, got {}",
            pairs.len()
        );
        for (s, r) in pairs {
            assert!(
                merged.events[s].us < merged.events[r].us,
                "recv before send after merge: {} !< {}",
                merged.events[s].to_json(),
                merged.events[r].to_json()
            );
        }
        // Per-family lifecycle order on the corrected timeline.
        for f in 0..40u64 {
            let fam = format!("F1.{f}");
            let evs: Vec<&ScopeEvent> = merged
                .events
                .iter()
                .filter(|e| e.family.as_deref() == Some(fam.as_str()))
                .collect();
            let pos = |name: &str| evs.iter().position(|e| e.ev == name).unwrap();
            assert!(pos("begin") < pos("commit_call"));
            assert!(pos("commit_call") < pos("resolved"));
        }
        // Events sorted by corrected time.
        assert!(merged.events.windows(2).all(|w| w[0].us <= w[1].us));
        // The artifact carries the merge header.
        let out = merged.to_jsonl();
        assert!(out.starts_with("{\"merge\":{\"reference\":1,"), "{out}");
    }

    #[test]
    fn sites_without_traffic_keep_local_clocks() {
        let events = parse_jsonl(
            "{\"seq\":0,\"site\":5,\"us\":10,\"ev\":\"crash\"}\n{\"seq\":0,\"site\":9,\"us\":4,\"ev\":\"restart\"}",
        );
        let merged = merge_skew_aware(events);
        assert_eq!(merged.reference, 5);
        assert_eq!(merged.map_for(9).unwrap().pairs, 0);
        assert_eq!(merged.events.len(), 2);
    }
}
