//! Provenance stamps for recorded artifacts (bench JSON, scrape
//! series, merged timelines): the git commit they were produced from
//! and a fingerprint of the run configuration.

/// The git commit the binary ran from (suffixed `-dirty` when the
/// worktree has uncommitted changes), or `"unknown"` outside a git
/// checkout — stamped into every recorded artifact so a committed
/// result is traceable to the code that produced it.
pub fn git_sha() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(sha) = run(&["rev-parse", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    let dirty = run(&["status", "--porcelain"])
        .map(|s| !s.trim().is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{sha}-dirty")
    } else {
        sha
    }
}

/// FNV-1a over a config's textual rendering: a short stable
/// fingerprint so two recorded artifacts are comparable iff their
/// config hashes match.
pub fn config_hash(config_text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config_text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The `"stamp": {...}` JSON fragment shared by recorded outputs: git
/// SHA plus a hash of the run configuration.
pub fn stamp_json(config_text: &str) -> String {
    format!(
        "{{\"git_sha\": \"{}\", \"config_hash\": \"{}\"}}",
        git_sha(),
        config_hash(config_text)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        assert_eq!(config_hash("abc"), config_hash("abc"));
        assert_ne!(config_hash("abc"), config_hash("abd"));
        assert_eq!(config_hash("").len(), 16);
    }
}
