//! Report formatting: aligned text tables.

/// One experiment's output: a title, formatted text, and the numeric
/// rows tests assert against.
#[derive(Debug, Clone)]
pub struct Report {
    pub title: String,
    pub text: String,
}

impl Report {
    pub fn new(title: impl Into<String>, text: String) -> Self {
        Report {
            title: title.into(),
            text,
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        f.write_str(&self.text)
    }
}

/// Builds an aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.len()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a mean (sd) cell the way the paper's figures annotate
/// standard deviations.
pub fn mean_sd(mean: f64, sd: f64) -> String {
    format!("{mean:.1} ({sd:.1})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: "1" and "22.5" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22.5").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn mean_sd_format() {
        assert_eq!(mean_sd(110.04, 17.26), "110.0 (17.3)");
    }

    #[test]
    fn report_display() {
        let r = Report::new("Table 9", "body\n".to_string());
        assert_eq!(r.to_string(), "== Table 9 ==\nbody\n");
    }
}
