//! Figure 3 — "Latency of Transactions, Non-blocking Commit"
//! (subordinates vs ms, standard deviation in parentheses).
//!
//! Write and read minimal transactions under the non-blocking
//! protocol, 0–3 subordinates, plus the derived
//! transaction-management-only series. Paper anchors: 1-subordinate
//! update measured as low as 145 ms against a 150 ms static estimate
//! (the estimate *overshoots* because the coordinator's begin-record
//! force overlaps the vote round); 1-subordinate read measured 101 ms
//! against a 70 ms static estimate; and the cost relative to
//! two-phase commit "somewhat less than twice as high", in line with
//! the 4/2 log-force and 5/3 message ratios.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_sim::Series;

use crate::fmt::{mean_sd, Report, Table};
use crate::runner::run_latency;

/// One measured point.
#[derive(Debug)]
pub struct Point {
    pub subs: u32,
    pub total: Series,
    pub tm_only: Series,
}

/// Runs the sweep: (write points, read points).
pub fn curves(quick: bool) -> (Vec<Point>, Vec<Point>) {
    let reps = if quick { 12 } else { 120 };
    let mut write = Vec::new();
    let mut read = Vec::new();
    for subs in 0..=3u32 {
        let r = run_latency(
            subs,
            true,
            CommitMode::NonBlocking,
            TwoPhaseVariant::Optimized,
            false,
            reps,
            2000 + subs as u64,
        );
        write.push(Point {
            subs,
            total: r.total,
            tm_only: r.tm_only,
        });
        let r = run_latency(
            subs,
            false,
            CommitMode::NonBlocking,
            TwoPhaseVariant::Optimized,
            false,
            reps,
            2100 + subs as u64,
        );
        read.push(Point {
            subs,
            total: r.total,
            tm_only: r.tm_only,
        });
    }
    (write, read)
}

/// Builds the Figure 3 report.
pub fn run(quick: bool) -> Report {
    let (write, read) = curves(quick);
    let mut t = Table::new(vec![
        "SUBS",
        "WRITE",
        "READ",
        "TM-ONLY (WRITE)",
        "TM-ONLY (READ)",
    ]);
    for i in 0..=3usize {
        t.row(vec![
            format!("{i}"),
            mean_sd(write[i].total.mean(), write[i].total.stddev()),
            mean_sd(read[i].total.mean(), read[i].total.stddev()),
            mean_sd(write[i].tm_only.mean(), write[i].tm_only.stddev()),
            mean_sd(read[i].tm_only.mean(), read[i].tm_only.stddev()),
        ]);
    }
    let mut text = t.render();
    text.push_str(
        "\npaper anchors: 1-sub write ~145-150 (static 150), 1-sub read 101 \
         (static 70); non-blocking costs somewhat less than twice two-phase.\n",
    );
    Report::new(
        "Figure 3: Latency of Transactions, Non-blocking Commit",
        text,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_latency;

    #[test]
    fn write_latency_in_paper_band() {
        let (write, _) = curves(true);
        let one = write[1].total.mean();
        assert!(
            (120.0..175.0).contains(&one),
            "1-sub nb write {one} vs paper ~145"
        );
        for w in write.windows(2) {
            assert!(w[1].total.mean() > w[0].total.mean());
        }
    }

    #[test]
    fn nonblocking_costs_less_than_twice_two_phase() {
        // "The cost of non-blocking commitment relative to two-phase
        // commitment seems somewhat less than twice as high."
        let nb = run_latency(
            1,
            true,
            CommitMode::NonBlocking,
            TwoPhaseVariant::Optimized,
            false,
            10,
            7,
        );
        let tp = run_latency(
            1,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            10,
            7,
        );
        // Compare commit-protocol cost (tm-only): the ratio must be
        // > 1 and < 2.
        let ratio = nb.tm_only.mean() / tp.tm_only.mean();
        assert!(
            (1.1..2.0).contains(&ratio),
            "tm-only nb/2pc ratio {ratio:.2} (nb {:.1}, 2pc {:.1})",
            nb.tm_only.mean(),
            tp.tm_only.mean()
        );
    }

    #[test]
    fn read_is_cheaper_and_close_to_two_phase() {
        let (write, read) = curves(true);
        for i in 0..=3usize {
            assert!(read[i].total.mean() < write[i].total.mean());
        }
        // A fully read-only transaction has the same critical path as
        // two-phase commit.
        let nb_read = read[1].total.mean();
        let tp_read = run_latency(
            1,
            false,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            10,
            9,
        )
        .total
        .mean();
        assert!(
            (nb_read - tp_read).abs() < 12.0,
            "nb read {nb_read} vs 2pc read {tp_read}"
        );
    }
}
