//! Table 1 — "Benchmarks of PC-RT and Mach".
//!
//! These numbers are the simulator's *inputs*: the paper measured them
//! on the IBM RT PC model 125 under Mach 2.0, and our cost model
//! carries them verbatim. The report prints each benchmark with the
//! paper's value and the value the simulator charges, so any drift is
//! visible.

use camelot_types::CostModel;

use crate::fmt::{Report, Table};

/// Row: (benchmark, paper value, model value in the same unit).
pub fn rows(c: &CostModel) -> Vec<(&'static str, String, String)> {
    vec![
        (
            "Procedure call, 32-byte arg",
            "12.0 us".into(),
            format!("{:.1} us", c.proc_call.as_micros() as f64),
        ),
        (
            "Data copy, bcopy()",
            "8.4 us + 180 us/KB".into(),
            format!(
                "{:.1} us + {} us/KB",
                c.bcopy_base.as_micros() as f64,
                c.bcopy_per_kb.as_micros()
            ),
        ),
        (
            "Kernel call, getpid()",
            "149 us".into(),
            format!("{} us", c.kernel_call.as_micros()),
        ),
        (
            "Copy data in/out of kernel",
            "35 us + copy time".into(),
            format!("{} us + copy time", c.kernel_copy_base.as_micros()),
        ),
        (
            "Local IPC, 8-byte in-line",
            "1.5 ms".into(),
            format!("{:.1} ms", c.local_ipc.as_millis_f64()),
        ),
        (
            "Remote IPC, 8-byte in-line",
            "19.1 ms".into(),
            format!("{:.1} ms", c.netmsg_rpc.as_millis_f64()),
        ),
        (
            "Context switch, swtch()",
            "137 us".into(),
            format!("{} us", c.context_switch.as_micros()),
        ),
        (
            "Raw disk write, 1 track",
            "26.8 ms".into(),
            format!("{:.1} ms", c.raw_disk_write_track.as_millis_f64()),
        ),
    ]
}

/// Builds the Table 1 report.
pub fn run(_quick: bool) -> Report {
    let c = CostModel::rt_pc_mach();
    let mut t = Table::new(vec!["BENCHMARK", "PAPER", "MODEL"]);
    for (name, paper, model) in rows(&c) {
        t.row(vec![name.to_string(), paper, model]);
    }
    Report::new("Table 1: Benchmarks of PC-RT and Mach", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_for_every_row() {
        // Each MODEL cell must textually contain the PAPER number.
        for (name, paper, model) in rows(&CostModel::rt_pc_mach()) {
            let p = paper.split_whitespace().next().unwrap().replace("us", "");
            let m = model.split_whitespace().next().unwrap();
            let pv: f64 = p.parse().unwrap();
            let mv: f64 = m.parse().unwrap();
            assert!((pv - mv).abs() < 0.6, "{name}: paper {pv} vs model {mv}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(true);
        assert!(r.text.contains("Raw disk write"));
        assert!(r.text.contains("26.8 ms"));
    }
}
