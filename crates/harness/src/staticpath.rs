//! Static (non-empirical) analysis of commitment protocols.
//!
//! "Commitment protocols are amenable to static analysis because
//! serial and parallel portions are clearly separated. [...] the
//! length of the critical path is simply that of the serial portion
//! plus the time of the slowest of each group of parallel operations"
//! (§4.2). These formulas, stated in the paper's primitives, predict
//! the latencies that Figures 2–3 measure; the paper's own instances
//! are 24.5 ms (local update), 9.5 ms (local read), 99.5 ms
//! (1-subordinate update), 150 ms (1-subordinate non-blocking update)
//! and 70 ms (1-subordinate non-blocking read).

use camelot_types::{CostModel, Duration};

/// One term of a static-analysis formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathItem {
    pub label: &'static str,
    pub cost: Duration,
}

/// A static critical-path (or completion-path) estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPath {
    pub items: Vec<PathItem>,
}

impl StaticPath {
    pub fn total(&self) -> Duration {
        self.items.iter().map(|i| i.cost).sum()
    }

    pub fn total_ms(&self) -> f64 {
        self.total().as_millis_f64()
    }
}

fn item(label: &'static str, cost: Duration) -> PathItem {
    PathItem { label, cost }
}

/// Local (0-subordinate) update transaction: begin + operation +
/// commit call + server vote round + commit-record force = 24.5 ms.
pub fn local_update(c: &CostModel) -> StaticPath {
    StaticPath {
        items: vec![
            item("begin-transaction call", c.local_ipc),
            item("operation (IPC + lock + access)", c.local_operation()),
            item("commit-transaction call", c.local_ipc),
            item("server vote round", c.local_ipc_to_server),
            item("force commit record", c.log_force),
        ],
    }
}

/// Local read transaction: the update path minus the force = 9.5 ms.
pub fn local_read(c: &CostModel) -> StaticPath {
    StaticPath {
        items: vec![
            item("begin-transaction call", c.local_ipc),
            item("operation (IPC + lock + access)", c.local_operation()),
            item("commit-transaction call", c.local_ipc),
            item("server vote round", c.local_ipc_to_server),
        ],
    }
}

/// Two-phase commit, `n >= 1` subordinates, update: the local path
/// plus the serial remote operations plus one (parallel-assumed)
/// prepare/vote/commit exchange = 70.5 + 29.5·n ms (99.5+½ at n = 1,
/// the paper's 99.5 with its 29 ms operation rounding).
pub fn twophase_update(c: &CostModel, n: u32) -> StaticPath {
    assert!(n >= 1);
    let mut items = local_update(c).items;
    items.push(item(
        "remote operations (serial)",
        c.remote_operation() * n as u64,
    ));
    items.push(item("prepare datagram", c.datagram));
    items.push(item("subordinate prepare force", c.log_force));
    items.push(item("vote datagram", c.datagram));
    items.push(item("commit datagram", c.datagram));
    items.push(item("drop locks (both sites)", c.drop_lock * 2));
    StaticPath { items }
}

/// Two-phase commit, read-only: no forces, subordinates excluded from
/// phase two.
pub fn twophase_read(c: &CostModel, n: u32) -> StaticPath {
    assert!(n >= 1);
    let mut items = local_read(c).items;
    items.push(item(
        "remote operations (serial)",
        c.remote_operation() * n as u64,
    ));
    items.push(item("prepare datagram", c.datagram));
    items.push(item("vote datagram", c.datagram));
    StaticPath { items }
}

/// Non-blocking commit, update, completion path: 4 log forces,
/// 4 datagrams, the remote operations, and ~20 ms of local
/// transaction-management messages (the paper's §4.3 accounting,
/// 149–150 ms at n = 1).
pub fn nonblocking_update(c: &CostModel, n: u32) -> StaticPath {
    assert!(n >= 1);
    StaticPath {
        items: vec![
            item("local TM messages", Duration::from_millis(20)),
            item(
                "remote operations (serial)",
                c.remote_operation() * n as u64,
            ),
            item("coordinator begin force", c.log_force),
            item("prepare datagram", c.datagram),
            item("subordinate prepare force", c.log_force),
            item("vote datagram", c.datagram),
            item("replicate datagram", c.datagram),
            item("subordinate replicate force", c.log_force),
            item("replicate-ack datagram", c.datagram),
            item("coordinator commit force", c.log_force),
        ],
    }
}

/// Non-blocking commit, read-only, completion path: two datagrams,
/// the remote operations, 20 ms local messages (70 ms at n = 1).
pub fn nonblocking_read(c: &CostModel, n: u32) -> StaticPath {
    assert!(n >= 1);
    StaticPath {
        items: vec![
            item("local TM messages", Duration::from_millis(20)),
            item(
                "remote operations (serial)",
                c.remote_operation() * n as u64,
            ),
            item("prepare datagram", c.datagram),
            item("vote datagram", c.datagram),
        ],
    }
}

/// The paper's headline primitive counts on the critical path.
pub fn critical_path_counts(nonblocking: bool) -> (u32, u32) {
    if nonblocking {
        (4, 5) // log forces, datagrams
    } else {
        (2, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> CostModel {
        CostModel::rt_pc_mach()
    }

    #[test]
    fn local_update_is_24_5() {
        assert_eq!(local_update(&c()).total_ms(), 24.5);
    }

    #[test]
    fn local_read_is_9_5() {
        assert_eq!(local_read(&c()).total_ms(), 9.5);
    }

    #[test]
    fn one_sub_update_matches_paper_99_5() {
        // The paper uses 29 ms for the remote operation where our
        // model carries the 0.5 ms lock: 99.5 + 0.5.
        let total = twophase_update(&c(), 1).total_ms();
        assert_eq!(total, 100.0);
        assert!((total - 99.5).abs() <= 0.5);
    }

    #[test]
    fn one_sub_nonblocking_update_matches_paper_150() {
        let total = nonblocking_update(&c(), 1).total_ms();
        assert_eq!(total, 149.5);
        assert!((total - 150.0).abs() <= 0.5);
    }

    #[test]
    fn one_sub_nonblocking_read_matches_paper_70() {
        let total = nonblocking_read(&c(), 1).total_ms();
        assert_eq!(total, 69.5);
        assert!((total - 70.0).abs() <= 0.5);
    }

    #[test]
    fn paths_scale_linearly_with_subordinates() {
        let d = twophase_update(&c(), 2).total_ms() - twophase_update(&c(), 1).total_ms();
        assert_eq!(d, 29.5, "each extra subordinate adds one serial operation");
    }

    #[test]
    fn critical_path_ratio_is_two_to_one_ish() {
        let (f2, m2) = critical_path_counts(false);
        let (f3, m3) = critical_path_counts(true);
        assert_eq!((f2, m2), (2, 3));
        assert_eq!((f3, m3), (4, 5));
    }

    #[test]
    fn nonblocking_forces_cost_double() {
        let nb = nonblocking_update(&c(), 1);
        let forces: Duration = nb
            .items
            .iter()
            .filter(|i| i.label.contains("force"))
            .map(|i| i.cost)
            .sum();
        assert_eq!(forces, Duration::from_millis(60), "4 forces x 15 ms");
    }
}
