//! Table 2 — "Latency of Camelot Primitives".
//!
//! The primitives that dominate commitment latency. As with Table 1
//! the model carries the paper's measurements; additionally this
//! report *verifies* two of them against the running simulation: a
//! remote operation RPC and a log force, measured end to end.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_types::CostModel;

use crate::fmt::{Report, Table};
use crate::runner::run_latency;

/// The primitive table: (name, paper ms, model ms).
pub fn rows(c: &CostModel) -> Vec<(&'static str, f64, f64)> {
    vec![
        ("Local in-line IPC", 1.5, c.local_ipc.as_millis_f64()),
        (
            "Local in-line IPC to server",
            3.0,
            c.local_ipc_to_server.as_millis_f64(),
        ),
        (
            "Local out-of-line IPC",
            5.5,
            c.local_ipc_out_of_line.as_millis_f64(),
        ),
        (
            "Local one-way in-line message",
            1.0,
            c.local_oneway_msg.as_millis_f64(),
        ),
        ("Remote RPC", 29.0, c.remote_rpc.as_millis_f64()),
        ("Log force", 15.0, c.log_force.as_millis_f64()),
        ("Datagram", 10.0, c.datagram.as_millis_f64()),
        ("Get lock", 0.5, c.get_lock.as_millis_f64()),
        ("Drop lock", 0.5, c.drop_lock.as_millis_f64()),
    ]
}

/// Builds the Table 2 report, including two end-to-end verifications.
pub fn run(quick: bool) -> Report {
    let c = CostModel::rt_pc_mach();
    let mut t = Table::new(vec!["PRIMITIVE", "PAPER (ms)", "MODEL (ms)"]);
    for (name, paper, model) in rows(&c) {
        t.row(vec![
            name.to_string(),
            format!("{paper:.1}"),
            format!("{model:.1}"),
        ]);
    }
    let mut text = t.render();

    // End-to-end verification: a local read transaction costs the
    // 9.5 ms static path, and adding the commit force costs exactly
    // one log force more.
    let reps = if quick { 5 } else { 50 };
    let read = run_latency(
        0,
        false,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        11,
    );
    let write = run_latency(
        0,
        true,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        11,
    );
    let force_measured = write.total.min() - read.total.min();
    text.push_str(&format!(
        "\nverification: local update minus local read = {force_measured:.1} ms \
         (one log force; Table 2 says {:.1})\n",
        c.log_force.as_millis_f64()
    ));
    Report::new("Table 2: Latency of Camelot Primitives", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_exactly() {
        for (name, paper, model) in rows(&CostModel::rt_pc_mach()) {
            assert_eq!(paper, model, "{name}");
        }
    }

    #[test]
    fn end_to_end_force_cost_verified() {
        let r = run(true);
        assert!(r.text.contains("= 15.0 ms"), "got:\n{}", r.text);
    }
}
