//! §4.2 lock-contention analysis.
//!
//! The paper's unoptimized-protocol discussion: the experiment locks
//! and updates the same data element in every transaction, so the
//! next transaction's operation reaches the subordinate before the
//! previous transaction has dropped its locks there, and waits
//! (~5 ms by the paper's arithmetic, longer under interleaving). The
//! §3.2 optimization shortens the retention window — the subordinate
//! drops locks on receipt of the commit notice instead of after its
//! own commit-record force — so contention falls.

use camelot_core::{CommitMode, TwoPhaseVariant};

use crate::fmt::{Report, Table};
use crate::runner::run_latency;

/// Measures back-to-back contention for one variant: mean operation
/// overshoot (time beyond the uncontended 29.5 + 3.5 ms constant) of
/// 1-subordinate update transactions.
pub fn op_overshoot_ms(variant: TwoPhaseVariant, quick: bool) -> f64 {
    let reps = if quick { 25 } else { 150 };
    let probe = run_latency(1, true, CommitMode::TwoPhase, variant, false, reps, 9000);
    // Measured operation time minus the uncontended constant: lock
    // waits plus jitter on the operation path.
    let constant = 3.5 + 29.5;
    (probe.op_time.mean() - constant).max(0.0)
}

/// Builds the contention report.
pub fn run(quick: bool) -> Report {
    let mut t = Table::new(vec!["VARIANT", "MEAN OP OVERSHOOT (ms)"]);
    let mut vals = Vec::new();
    for v in [
        TwoPhaseVariant::Optimized,
        TwoPhaseVariant::SemiOptimized,
        TwoPhaseVariant::Unoptimized,
    ] {
        let o = op_overshoot_ms(v, quick);
        vals.push(o);
        t.row(vec![format!("{v:?}"), format!("{o:.1}")]);
    }
    let mut text = t.render();
    text.push_str(
        "\nback-to-back transactions on one data element: the operation waits \
         for the previous transaction's locks; the paper computes ~5 ms for \
         the unoptimized protocol. Earlier lock release (the delayed-commit \
         optimization) shortens the wait.\n",
    );
    Report::new("Section 4.2: back-to-back lock contention", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_retains_locks_no_longer_than_unoptimized() {
        let opt = op_overshoot_ms(TwoPhaseVariant::Optimized, true);
        let unopt = op_overshoot_ms(TwoPhaseVariant::Unoptimized, true);
        assert!(
            opt <= unopt + 1.0,
            "optimized overshoot {opt:.1} must not exceed unoptimized {unopt:.1}"
        );
    }

    #[test]
    fn overshoot_is_bounded() {
        // The wait is a few milliseconds, not a protocol round.
        let unopt = op_overshoot_ms(TwoPhaseVariant::Unoptimized, true);
        assert!(unopt < 40.0, "overshoot {unopt:.1} suspiciously large");
    }
}
