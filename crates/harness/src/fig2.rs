//! Figure 2 — "Latency of Transactions, Two-phase Commit"
//! (subordinates vs ms, standard deviation in parentheses).
//!
//! Four series over 0–3 subordinates: the optimized write (the §3.2
//! delayed-commit protocol), the semi-optimized write (commit record
//! forced, ack still delayed), the unoptimized write (forced +
//! immediate ack), and the read transaction; plus the derived
//! transaction-management-only curves for the optimized write and the
//! read. Paper anchors: local update 31 ms, 1-subordinate optimized
//! update 110 ms (sd 17), local read 13 ms, with variance growing
//! quickly in the number of subordinates.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_sim::Series;

use crate::fmt::{mean_sd, Report, Table};
use crate::runner::run_latency;

/// One measured point.
#[derive(Debug)]
pub struct Point {
    pub subs: u32,
    pub total: Series,
    pub tm_only: Series,
}

/// One curve of the figure.
#[derive(Debug)]
pub struct Curve {
    pub name: &'static str,
    pub points: Vec<Point>,
}

/// Runs the full Figure 2 sweep.
pub fn curves(quick: bool) -> Vec<Curve> {
    let reps = if quick { 12 } else { 120 };
    let max_subs = 3;
    let mut out = Vec::new();
    let series: [(&'static str, bool, TwoPhaseVariant); 4] = [
        ("optimized write", true, TwoPhaseVariant::Optimized),
        ("semi-optimized write", true, TwoPhaseVariant::SemiOptimized),
        ("unoptimized write", true, TwoPhaseVariant::Unoptimized),
        ("read", false, TwoPhaseVariant::Optimized),
    ];
    for (name, write, variant) in series {
        let mut points = Vec::new();
        for subs in 0..=max_subs {
            let r = run_latency(
                subs,
                write,
                CommitMode::TwoPhase,
                variant,
                false,
                reps,
                1000 + subs as u64,
            );
            points.push(Point {
                subs,
                total: r.total,
                tm_only: r.tm_only,
            });
        }
        out.push(Curve { name, points });
    }
    out
}

/// Builds the Figure 2 report.
pub fn run(quick: bool) -> Report {
    let data = curves(quick);
    let mut t = Table::new(vec![
        "SUBS",
        "OPTIMIZED WRITE",
        "SEMI-OPT WRITE",
        "UNOPT WRITE",
        "READ",
        "TM-ONLY (WRITE)",
        "TM-ONLY (READ)",
    ]);
    for i in 0..=3usize {
        let opt = &data[0].points[i];
        let semi = &data[1].points[i];
        let unopt = &data[2].points[i];
        let read = &data[3].points[i];
        t.row(vec![
            format!("{i}"),
            mean_sd(opt.total.mean(), opt.total.stddev()),
            mean_sd(semi.total.mean(), semi.total.stddev()),
            mean_sd(unopt.total.mean(), unopt.total.stddev()),
            mean_sd(read.total.mean(), read.total.stddev()),
            mean_sd(opt.tm_only.mean(), opt.tm_only.stddev()),
            mean_sd(read.tm_only.mean(), read.tm_only.stddev()),
        ]);
    }
    let mut text = t.render();
    text.push_str(
        "\npaper anchors: local update 31, 1-sub optimized update 110 (17), \
         local read 13; variance rises with subordinates.\n",
    );
    Report::new("Figure 2: Latency of Transactions, Two-phase Commit", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let data = curves(true);
        let opt = &data[0];
        let read = &data[3];
        // Latency grows with subordinates.
        for w in opt.points.windows(2) {
            assert!(
                w[1].total.mean() > w[0].total.mean() + 15.0,
                "optimized write must grow per subordinate"
            );
        }
        // Reads are always cheaper than writes.
        for (r, w) in read.points.iter().zip(opt.points.iter()) {
            assert!(r.total.mean() < w.total.mean());
        }
        // Paper anchors, loosely (±35%).
        let local = opt.points[0].total.mean();
        assert!(
            (21.0..42.0).contains(&local),
            "local update {local} vs paper 31"
        );
        let one_sub = opt.points[1].total.mean();
        assert!(
            (85.0..145.0).contains(&one_sub),
            "1-sub update {one_sub} vs paper 110"
        );
        let local_read = read.points[0].total.mean();
        assert!(
            (9.0..18.0).contains(&local_read),
            "local read {local_read} vs paper 13"
        );
    }

    #[test]
    fn unoptimized_is_no_faster_than_optimized() {
        let data = curves(true);
        for i in 1..=3usize {
            let opt = data[0].points[i].total.mean();
            let unopt = data[2].points[i].total.mean();
            // Wide margin: quick runs use few repetitions and the
            // heavy-tailed jitter makes per-config means noisy.
            assert!(
                unopt >= opt - 16.0,
                "{i} subs: unoptimized {unopt} vs optimized {opt}"
            );
        }
    }

    #[test]
    fn variance_rises_with_subordinates() {
        let data = curves(true);
        let opt = &data[0];
        let sd0 = opt.points[0].total.stddev();
        let sd3 = opt.points[3].total.stddev();
        assert!(
            sd3 > sd0,
            "sd must grow with load: sd(0 subs)={sd0:.1} sd(3 subs)={sd3:.1}"
        );
    }
}
