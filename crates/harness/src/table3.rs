//! Table 3 — "Latency Breakdown": static analysis versus measurement.
//!
//! The paper's Table 3 lists the events on the critical path with
//! their primitive latencies and compares the static sum with the
//! measured time for three experiments: the local update (24.5 of
//! 31 ms), the 1-subordinate update (99.5 of 110 ms) and the local
//! read (9.5 of 13 ms). "The addition of primitive latencies provides
//! an underestimate of the measured time" — the missing milliseconds
//! are CPU time inside processes and scheduling noise, which the
//! simulation models as load-dependent jitter.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_types::CostModel;

use crate::fmt::{Report, Table};
use crate::runner::run_latency;
use crate::staticpath;

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub experiment: &'static str,
    pub static_ms: f64,
    pub paper_static_ms: f64,
    pub measured_ms: f64,
    pub paper_measured_ms: f64,
}

/// Runs the three experiments and builds the comparisons.
pub fn comparisons(quick: bool) -> Vec<Comparison> {
    let c = CostModel::rt_pc_mach();
    let reps = if quick { 10 } else { 100 };
    let local_update = run_latency(
        0,
        true,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        21,
    );
    let one_sub = run_latency(
        1,
        true,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        22,
    );
    let local_read = run_latency(
        0,
        false,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        23,
    );
    vec![
        Comparison {
            experiment: "local update",
            static_ms: staticpath::local_update(&c).total_ms(),
            paper_static_ms: 24.5,
            measured_ms: local_update.total.mean(),
            paper_measured_ms: 31.0,
        },
        Comparison {
            experiment: "1-subordinate update",
            static_ms: staticpath::twophase_update(&c, 1).total_ms(),
            paper_static_ms: 99.5,
            measured_ms: one_sub.total.mean(),
            paper_measured_ms: 110.0,
        },
        Comparison {
            experiment: "local read",
            static_ms: staticpath::local_read(&c).total_ms(),
            paper_static_ms: 9.5,
            measured_ms: local_read.total.mean(),
            paper_measured_ms: 13.0,
        },
    ]
}

/// Builds the Table 3 report: the per-item critical path plus the
/// static-vs-measured comparison.
pub fn run(quick: bool) -> Report {
    let c = CostModel::rt_pc_mach();
    let mut text = String::from("Critical path of the 1-subordinate update:\n");
    let mut t = Table::new(vec!["EVENT", "LATENCY (ms)"]);
    for item in staticpath::twophase_update(&c, 1).items {
        t.row(vec![
            item.label.to_string(),
            format!("{:.1}", item.cost.as_millis_f64()),
        ]);
    }
    text.push_str(&t.render());

    text.push_str("\nStatic analysis vs measurement:\n");
    let mut t = Table::new(vec![
        "EXPERIMENT",
        "STATIC",
        "PAPER STATIC",
        "MEASURED",
        "PAPER MEASURED",
    ]);
    for cmp in comparisons(quick) {
        t.row(vec![
            cmp.experiment.to_string(),
            format!("{:.1}", cmp.static_ms),
            format!("{:.1}", cmp.paper_static_ms),
            format!("{:.1}", cmp.measured_ms),
            format!("{:.1}", cmp.paper_measured_ms),
        ]);
    }
    text.push_str(&t.render());
    text.push_str(
        "\nAs in the paper, the static sum underestimates the measured time;\n\
         the gap is per-process CPU time and scheduling effects.\n",
    );
    Report::new("Table 3: Latency Breakdown (static vs empirical)", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_matches_paper_within_rounding() {
        for cmp in comparisons(true) {
            assert!(
                (cmp.static_ms - cmp.paper_static_ms).abs() <= 0.5,
                "{}: static {} vs paper {}",
                cmp.experiment,
                cmp.static_ms,
                cmp.paper_static_ms
            );
        }
    }

    #[test]
    fn measured_is_at_least_static_like_the_paper() {
        for cmp in comparisons(true) {
            assert!(
                cmp.measured_ms >= cmp.static_ms - 0.6,
                "{}: measured {} below static {}",
                cmp.experiment,
                cmp.measured_ms,
                cmp.static_ms
            );
        }
    }

    #[test]
    fn measured_tracks_paper_measured_loosely() {
        // Shape check: within 35% of the paper's measured numbers.
        for cmp in comparisons(true) {
            let rel = (cmp.measured_ms - cmp.paper_measured_ms).abs() / cmp.paper_measured_ms;
            assert!(
                rel < 0.35,
                "{}: measured {} vs paper {}",
                cmp.experiment,
                cmp.measured_ms,
                cmp.paper_measured_ms
            );
        }
    }
}
