//! Ablations of the two design choices the paper calls out.
//!
//! **A1 — delayed-commit benefit vs distributed fraction.** "The
//! amount of improvement is dependent upon the fraction of
//! transactions that require distributed commitment" (§3.2): the
//! optimization saves one subordinate log force per *distributed*
//! update transaction, so its effect on a subordinate's logging load
//! scales with the distributed fraction of the workload.
//!
//! **A2 — group-commit window sweep.** "It sacrifices latency in
//! order to increase throughput" (§3.5): a longer accumulation window
//! batches more commit records per platter write, raising TPS at
//! saturation while raising per-transaction latency.

use camelot_core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot_net::Outcome;
use camelot_node::{AppSpec, World, WorldConfig};
use camelot_sim::Scheduler;
use camelot_types::{Duration, ObjectId, ServerId, SiteId, Time};
use camelot_wal::BatchPolicy;

use crate::fmt::{Report, Table};

// =====================================================================
// A1: delayed commit vs distributed fraction
// =====================================================================

/// Measures subordinate log forces per distributed update transaction
/// for one protocol variant.
pub fn sub_forces_per_txn(variant: TwoPhaseVariant, quick: bool) -> f64 {
    let reps = if quick { 20 } else { 100 };
    let mut engine = EngineConfig::for_variant(variant);
    engine.ack_flush_interval = Duration::from_millis(50);
    let mut cfg = WorldConfig::latency(2, engine, 77);
    // Give the background flush time to batch several lazy commit
    // records per platter write, as a loaded disk manager would.
    cfg.disk.lazy_flush = Duration::from_millis(500);
    let spec = AppSpec::minimal(SiteId(1), &[SiteId(2)], true, CommitMode::TwoPhase, reps);
    let mut world = World::new(cfg);
    let app = world.add_app(spec);
    let mut sched = Scheduler::new(77);
    world.start(&mut sched);
    assert!(world.run(&mut sched, Time(3_600_000_000)));
    world.settle(&mut sched, Duration::from_secs(2));
    let committed = world
        .records(app)
        .iter()
        .filter(|r| r.outcome == Outcome::Committed)
        .count() as f64;
    world.platter_writes(SiteId(2)) as f64 / committed
}

/// Builds the A1 report: subordinate log writes per 100 transactions
/// as the distributed fraction varies.
pub fn run_delayed_commit(quick: bool) -> Report {
    let opt = sub_forces_per_txn(TwoPhaseVariant::Optimized, quick);
    let unopt = sub_forces_per_txn(TwoPhaseVariant::Unoptimized, quick);
    let mut t = Table::new(vec![
        "DISTRIBUTED FRACTION",
        "SUB WRITES/100 TXNS (OPTIMIZED)",
        "SUB WRITES/100 TXNS (UNOPTIMIZED)",
        "SAVED",
    ]);
    for f in [0u32, 25, 50, 75, 100] {
        let o = opt * f as f64;
        let u = unopt * f as f64;
        t.row(vec![
            format!("{f}%"),
            format!("{o:.0}"),
            format!("{u:.0}"),
            format!("{:.0}", u - o),
        ]);
    }
    let mut text = t.render();
    text.push_str(&format!(
        "\nmeasured per distributed txn: optimized {opt:.2} vs unoptimized {unopt:.2} \
         subordinate platter writes.\nLocal transactions write nothing at the \
         subordinate, so the saving scales with the distributed fraction (§3.2).\n",
    ));
    Report::new(
        "Ablation A1: delayed-commit saving vs distributed fraction",
        text,
    )
}

// =====================================================================
// A2: group-commit window sweep
// =====================================================================

/// One window-sweep point.
#[derive(Debug, Clone, Copy)]
pub struct WindowPoint {
    pub window_ms: u64,
    pub tps: f64,
    pub mean_latency_ms: f64,
    pub writes_per_sec: f64,
}

/// Runs the update-throughput workload under a `Window(d)` batching
/// policy (d = 0 means plain coalescing).
pub fn window_sweep(quick: bool) -> Vec<WindowPoint> {
    let txns = if quick { 20 } else { 100 };
    let pairs = 4u32;
    let mut out = Vec::new();
    for window_ms in [0u64, 5, 15, 30, 60] {
        let mut cfg = WorldConfig::throughput(20, true, pairs, 88);
        cfg.disk.policy = if window_ms == 0 {
            BatchPolicy::Coalesce
        } else {
            BatchPolicy::Window(Duration::from_millis(window_ms))
        };
        let mut world = World::new(cfg);
        for k in 0..pairs {
            let mut spec = AppSpec::minimal(SiteId(1), &[], true, CommitMode::TwoPhase, txns);
            spec.ops[0].server = ServerId(k + 1);
            spec.ops[0].object = ObjectId(20_000 + k as u64);
            world.add_app(spec);
        }
        let mut sched = Scheduler::new(88);
        world.start(&mut sched);
        assert!(world.run(&mut sched, Time(3_600_000_000)));
        let elapsed = sched.now().as_secs_f64();
        let mut committed = 0usize;
        let mut lat_sum = 0.0;
        for a in 0..pairs as usize {
            for r in world.records(a) {
                if r.outcome == Outcome::Committed {
                    committed += 1;
                    lat_sum += r.latency().as_millis_f64();
                }
            }
        }
        out.push(WindowPoint {
            window_ms,
            tps: committed as f64 / elapsed,
            mean_latency_ms: lat_sum / committed as f64,
            writes_per_sec: world.platter_writes(SiteId(1)) as f64 / elapsed,
        });
    }
    out
}

/// Builds the A2 report.
pub fn run_group_commit(quick: bool) -> Report {
    let points = window_sweep(quick);
    let mut t = Table::new(vec!["WINDOW (ms)", "TPS", "MEAN LATENCY (ms)", "WRITES/s"]);
    for p in &points {
        t.row(vec![
            format!("{}", p.window_ms),
            format!("{:.1}", p.tps),
            format!("{:.1}", p.mean_latency_ms),
            format!("{:.1}", p.writes_per_sec),
        ]);
    }
    let mut text = t.render();
    text.push_str(
        "\ngroup commit trades latency for throughput (§3.5): wider windows \
         batch more commit records per platter write, at higher per-\
         transaction latency.\n",
    );
    Report::new("Ablation A2: group-commit window sweep", text)
}

/// Extra sanity experiment for A1 used by tests: the optimized
/// variant's end-to-end latency does not exceed the unoptimized one
/// ("throughput is improved at no cost to latency"). Measured on a
/// deterministic (jitter-free) network so the comparison is exact.
pub fn latency_cost_of_optimization(quick: bool) -> (f64, f64) {
    let reps = if quick { 10 } else { 60 };
    let mut out = [0.0f64; 2];
    for (i, variant) in [TwoPhaseVariant::Optimized, TwoPhaseVariant::Unoptimized]
        .iter()
        .enumerate()
    {
        let engine = EngineConfig::for_variant(*variant);
        let mut cfg = WorldConfig::latency(2, engine, 5);
        cfg.net = camelot_node::NetConfig::deterministic();
        let spec = AppSpec::minimal(SiteId(1), &[SiteId(2)], true, CommitMode::TwoPhase, reps);
        let mut world = World::new(cfg);
        let app = world.add_app(spec);
        let mut sched = Scheduler::new(5);
        world.start(&mut sched);
        assert!(world.run(&mut sched, Time(3_600_000_000)));
        let mean: f64 = world
            .records(app)
            .iter()
            .map(|r| r.latency().as_millis_f64())
            .sum::<f64>()
            / reps as f64;
        out[i] = mean;
    }
    (out[0], out[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_commit_saves_about_one_force_per_distributed_txn() {
        let opt = sub_forces_per_txn(TwoPhaseVariant::Optimized, true);
        let unopt = sub_forces_per_txn(TwoPhaseVariant::Unoptimized, true);
        assert!(
            (1.8..2.2).contains(&unopt),
            "unoptimized {unopt} ~ 2 forces/txn"
        );
        assert!(
            opt < unopt - 0.5,
            "optimized {opt} must save most of a force"
        );
    }

    #[test]
    fn optimization_costs_no_latency() {
        let (opt, unopt) = latency_cost_of_optimization(true);
        assert!(
            opt <= unopt + 3.0,
            "optimized latency {opt:.1} must not exceed unoptimized {unopt:.1}"
        );
    }

    #[test]
    fn wider_windows_trade_latency_for_fewer_writes() {
        let points = window_sweep(true);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.writes_per_sec < first.writes_per_sec,
            "wider window must batch more: {} vs {}",
            last.writes_per_sec,
            first.writes_per_sec
        );
        assert!(
            last.mean_latency_ms > first.mean_latency_ms,
            "wider window must cost latency: {} vs {}",
            last.mean_latency_ms,
            first.mean_latency_ms
        );
    }
}
