//! Figures 4 & 5 — transaction throughput versus application/server
//! pairs (the multithreading experiment of §4.4).
//!
//! The basic experiment: 1–4 application/server pairs execute minimal
//! local transactions against a transaction manager limited to 1, 5
//! or 20 threads, with group commit on or off. Paper findings:
//!
//! - **Reads (Figure 5)**: a single TranMan thread accommodates more
//!   than one client but not more than two; with 5 or 20 threads the
//!   test becomes OS-bound rather than TranMan-bound (~22 TPS at one
//!   pair, rising ~52% from 1 to 2 pairs and ~12% from 2 to 3,
//!   saturating in the mid-30s). 20 threads ≈ 5 threads.
//! - **Updates (Figure 4)**: the logger is the bottleneck; group
//!   commit raises the ceiling, and thread-count gains are smaller
//!   (32% and 4%).

use crate::fmt::{Report, Table};
use crate::runner::{run_throughput, ThroughputResult};

/// One throughput curve: TPS per pair count (1..=4).
#[derive(Debug)]
pub struct Curve {
    pub name: String,
    pub points: Vec<ThroughputResult>,
}

/// Runs the update sweep (Figure 4).
pub fn update_curves(quick: bool) -> Vec<Curve> {
    let txns = if quick { 25 } else { 150 };
    let mut out = Vec::new();
    let configs: [(&str, usize, bool); 4] = [
        ("group commit (20 threads)", 20, true),
        ("20 threads", 20, false),
        ("5 threads", 5, false),
        ("1 thread", 1, false),
    ];
    for (name, threads, gc) in configs {
        let mut points = Vec::new();
        for pairs in 1..=4u32 {
            points.push(run_throughput(
                threads,
                pairs,
                true,
                gc,
                txns,
                40 + pairs as u64,
            ));
        }
        out.push(Curve {
            name: name.to_string(),
            points,
        });
    }
    out
}

/// Runs the read sweep (Figure 5). Group commit is irrelevant for
/// reads (no log writes), so the curves vary only the thread count.
pub fn read_curves(quick: bool) -> Vec<Curve> {
    let txns = if quick { 25 } else { 150 };
    let mut out = Vec::new();
    for threads in [20usize, 5, 1] {
        let mut points = Vec::new();
        for pairs in 1..=4u32 {
            points.push(run_throughput(
                threads,
                pairs,
                false,
                true,
                txns,
                50 + pairs as u64,
            ));
        }
        out.push(Curve {
            name: format!("{threads} thread(s)"),
            points,
        });
    }
    out
}

fn render(curves: &[Curve]) -> String {
    let mut header = vec!["PAIRS".to_string()];
    header.extend(curves.iter().map(|c| c.name.to_uppercase()));
    let mut t = Table::new(header);
    for i in 0..4usize {
        let mut row = vec![format!("{}", i + 1)];
        for c in curves {
            row.push(format!("{:.1}", c.points[i].tps));
        }
        t.row(row);
    }
    t.render()
}

/// Builds the Figure 4 report (update throughput).
pub fn run_fig4(quick: bool) -> Report {
    let curves = update_curves(quick);
    let mut text = render(&curves);
    // Show what group commit buys in platter writes.
    let gc = &curves[0].points[3];
    let no = &curves[1].points[3];
    text.push_str(&format!(
        "\nplatter writes/sec at 4 pairs: group commit {:.1} vs off {:.1} \
         (batching shares the ~30/s log-device ceiling)\n\
         paper shape: logger-bound; group commit on top, 1 thread lowest;\n\
         thread gains smaller than reads (32% then 4%).\n",
        gc.writes_per_sec, no.writes_per_sec
    ));
    Report::new(
        "Figure 4: Update Transaction Throughput (pairs vs TPS)",
        text,
    )
}

/// Builds the Figure 5 report (read throughput).
pub fn run_fig5(quick: bool) -> Report {
    let curves = read_curves(quick);
    let mut text = render(&curves);
    let c20 = &curves[0];
    let g12 = 100.0 * (c20.points[1].tps / c20.points[0].tps - 1.0);
    let g23 = 100.0 * (c20.points[2].tps / c20.points[1].tps - 1.0);
    text.push_str(&format!(
        "\n20-thread growth: {g12:.0}% from 1 to 2 pairs, {g23:.0}% from 2 to 3 \
         (paper: 52% and 12%).\n\
         paper shape: 1 thread serves >1 but <=2 clients; 20 threads ~= 5 threads.\n",
    ));
    Report::new("Figure 5: Read Transaction Throughput (pairs vs TPS)", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_shape_matches_paper() {
        let curves = read_curves(true);
        let c20 = &curves[0];
        let c5 = &curves[1];
        let c1 = &curves[2];
        // One pair lands near the paper's 22 TPS.
        assert!(
            (15.0..30.0).contains(&c20.points[0].tps),
            "1-pair read tps {}",
            c20.points[0].tps
        );
        // Multithreading helps beyond 2 clients: at 3 pairs, 5 threads
        // clearly beats 1 thread.
        assert!(
            c5.points[2].tps > c1.points[2].tps * 1.1,
            "5 threads {} vs 1 thread {}",
            c5.points[2].tps,
            c1.points[2].tps
        );
        // 20 threads is roughly the same as 5 (both sufficient).
        let rel = (c20.points[3].tps - c5.points[3].tps).abs() / c5.points[3].tps;
        assert!(rel < 0.15, "20 vs 5 threads differ {rel:.2}");
        // Throughput grows 1 -> 2 pairs for the multithreaded config.
        assert!(c20.points[1].tps > c20.points[0].tps * 1.2);
    }

    #[test]
    fn update_shape_matches_paper() {
        let curves = update_curves(true);
        let gc = &curves[0];
        let no20 = &curves[1];
        let no1 = &curves[3];
        // Group commit wins at saturation.
        assert!(
            gc.points[3].tps > no20.points[3].tps,
            "gc {} vs no-gc {}",
            gc.points[3].tps,
            no20.points[3].tps
        );
        // One thread is the worst configuration at load.
        assert!(no1.points[3].tps <= no20.points[3].tps + 0.2);
        // Updates are far below reads (the log force dominates).
        let reads = read_curves(true);
        assert!(gc.points[3].tps < reads[0].points[3].tps * 0.6);
        // Group commit visibly reduces platter writes per txn.
        assert!(gc.points[3].writes_per_sec < no20.points[3].writes_per_sec);
    }
}
