//! Critical-path primitive counts, measured.
//!
//! The paper's conclusions quantify the protocols in primitives: an
//! optimized two-phase update transaction needs "only two log writes
//! (both forces)" and three datagrams on its critical path (plus the
//! piggybacked acknowledgement off it); non-blocking commitment needs
//! "two log forces at each site and five messages in the critical
//! path". This experiment runs one minimal transaction per
//! configuration on a deterministic network and reads the counts out
//! of the engines — protocol accounting measured, not asserted.

use camelot_core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot_node::{AppSpec, NetConfig, World, WorldConfig};
use camelot_sim::Scheduler;
use camelot_types::{Duration, SiteId, Time};

use crate::fmt::{Report, Table};

/// Measured primitive counts for one protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Synchronous log forces across all sites.
    pub forces: u64,
    /// Lazy (non-forced) commit records — each one a force the
    /// delayed-commit optimization avoided.
    pub lazy_appends: u64,
    /// Inter-TranMan datagrams (including the acknowledgement).
    pub datagrams: u64,
}

/// Runs one minimal 1-subordinate transaction and counts primitives.
pub fn measure(mode: CommitMode, variant: TwoPhaseVariant, write: bool) -> Counts {
    let mut cfg = WorldConfig::latency(2, EngineConfig::for_variant(variant), 3);
    cfg.net = NetConfig::deterministic();
    let mut world = World::new(cfg);
    world.add_app(AppSpec::minimal(SiteId(1), &[SiteId(2)], write, mode, 1));
    let mut sched = Scheduler::new(3);
    world.start(&mut sched);
    assert!(world.run(&mut sched, Time(3_600_000_000)));
    world.settle(&mut sched, Duration::from_secs(30));
    let s1 = world.engine(SiteId(1)).stats();
    let s2 = world.engine(SiteId(2)).stats();
    Counts {
        forces: s1.forces + s2.forces,
        lazy_appends: s1.lazy_appends + s2.lazy_appends,
        datagrams: s1.datagrams + s2.datagrams,
    }
}

/// Builds the report.
pub fn run(_quick: bool) -> Report {
    let rows: Vec<(&str, CommitMode, TwoPhaseVariant, bool, &str, &str)> = vec![
        (
            "2PC optimized update",
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            true,
            "2",
            "3 + piggybacked ack",
        ),
        (
            "2PC unoptimized update",
            CommitMode::TwoPhase,
            TwoPhaseVariant::Unoptimized,
            true,
            "3",
            "4 (ack not piggybacked)",
        ),
        (
            "2PC read",
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            "0",
            "2",
        ),
        (
            "non-blocking update",
            CommitMode::NonBlocking,
            TwoPhaseVariant::Optimized,
            true,
            "4",
            "5 + acks",
        ),
        (
            "non-blocking read",
            CommitMode::NonBlocking,
            TwoPhaseVariant::Optimized,
            false,
            "0 on path (1 begin force off path)",
            "2",
        ),
    ];
    let mut t = Table::new(vec![
        "CONFIGURATION",
        "FORCES",
        "LAZY RECORDS",
        "DATAGRAMS",
        "PAPER FORCES",
        "PAPER MSGS",
    ]);
    for (name, mode, variant, write, paper_f, paper_m) in rows {
        let c = measure(mode, variant, write);
        t.row(vec![
            name.to_string(),
            format!("{}", c.forces),
            format!("{}", c.lazy_appends),
            format!("{}", c.datagrams),
            paper_f.to_string(),
            paper_m.to_string(),
        ]);
    }
    let mut text = t.render();
    text.push_str(
        "\n1-subordinate minimal transactions; counts include cleanup traffic \
         (acknowledgements, forget notes), which the paper excludes from its \
         critical-path figures.\n",
    );
    Report::new("Primitive counts per transaction (measured)", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_two_phase_is_two_forces() {
        let c = measure(CommitMode::TwoPhase, TwoPhaseVariant::Optimized, true);
        assert_eq!(c.forces, 2, "coordinator commit + subordinate prepare");
        assert_eq!(c.lazy_appends, 1, "the delayed subordinate commit record");
    }

    #[test]
    fn unoptimized_two_phase_is_three_forces() {
        let c = measure(CommitMode::TwoPhase, TwoPhaseVariant::Unoptimized, true);
        assert_eq!(c.forces, 3, "the optimization's saved force comes back");
        assert_eq!(c.lazy_appends, 0);
    }

    #[test]
    fn nonblocking_is_four_forces() {
        let c = measure(CommitMode::NonBlocking, TwoPhaseVariant::Optimized, true);
        assert_eq!(c.forces, 4, "begin + prepared + replicate + commit");
    }

    #[test]
    fn reads_force_nothing_on_the_critical_path() {
        let c = measure(CommitMode::TwoPhase, TwoPhaseVariant::Optimized, false);
        assert_eq!(c.forces, 0);
        let c = measure(CommitMode::NonBlocking, TwoPhaseVariant::Optimized, false);
        assert_eq!(c.forces, 1, "only the coordinator's off-path begin record");
    }

    #[test]
    fn nonblocking_sends_more_datagrams_than_two_phase() {
        let tp = measure(CommitMode::TwoPhase, TwoPhaseVariant::Optimized, true);
        let nb = measure(CommitMode::NonBlocking, TwoPhaseVariant::Optimized, true);
        assert!(
            nb.datagrams > tp.datagrams,
            "nb {} vs 2pc {}",
            nb.datagrams,
            tp.datagrams
        );
    }

    /// Oracle for the protocol-cost auditor: `camelot_obs::budget_for`
    /// must agree with the deterministic-sim measurement for every
    /// protocol configuration it knows. If either accounting changes,
    /// this pins the drift.
    #[test]
    fn auditor_budgets_match_the_measured_counts() {
        use camelot_obs::{budget_for, AuditProtocol};
        let configs = [
            (
                AuditProtocol::TwoPhaseDelayed,
                CommitMode::TwoPhase,
                TwoPhaseVariant::Optimized,
                true,
            ),
            (
                AuditProtocol::TwoPhaseStandard,
                CommitMode::TwoPhase,
                TwoPhaseVariant::Unoptimized,
                true,
            ),
            (
                AuditProtocol::ReadOnly,
                CommitMode::TwoPhase,
                TwoPhaseVariant::Optimized,
                false,
            ),
            (
                AuditProtocol::NonBlocking,
                CommitMode::NonBlocking,
                TwoPhaseVariant::Optimized,
                true,
            ),
            (
                AuditProtocol::NonBlockingRead,
                CommitMode::NonBlocking,
                TwoPhaseVariant::Optimized,
                false,
            ),
        ];
        for (protocol, mode, variant, write) in configs {
            let budget = budget_for(protocol);
            let c = measure(mode, variant, write);
            assert_eq!(
                c.forces,
                budget.forces,
                "[{}] measured forces drifted from the audited budget",
                protocol.name()
            );
            assert_eq!(
                c.lazy_appends,
                budget.lazy_appends,
                "[{}] measured lazy appends drifted from the audited budget",
                protocol.name()
            );
            assert!(
                (budget.datagrams_min..=budget.datagrams_max).contains(&c.datagrams),
                "[{}] measured {} datagrams outside the audited budget {}..={}",
                protocol.name(),
                c.datagrams,
                budget.datagrams_min,
                budget.datagrams_max
            );
        }
    }
}
