//! §4.1 — the RPC latency decomposition.
//!
//! The paper times 1000 RPCs (28.5 ms each) and accounts for them as
//! NetMsgServer-to-NetMsgServer RPC (19.1 ms) + two CornMan↔NetMsg
//! IPC hops (2 × 1.5 ms) + CornMan CPU at each site (2 × 3.2 ms):
//! "Miraculously, there is no extra or missing time:
//! 19.1 + 3 + 3.2 + 3.2 = 28.5". This module reproduces both sides:
//! the accounting from the cost model and the measured per-operation
//! RPC time from the simulation.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_types::CostModel;

use crate::fmt::{Report, Table};
use crate::runner::run_latency;

/// The decomposition rows: (component, ms).
pub fn decomposition(c: &CostModel) -> Vec<(&'static str, f64)> {
    vec![
        (
            "NetMsgServer-to-NetMsgServer RPC",
            c.netmsg_rpc.as_millis_f64(),
        ),
        (
            "CornMan<->NetMsgServer IPC (2 x 1.5)",
            (c.local_ipc * 2).as_millis_f64(),
        ),
        ("CornMan CPU, sending site", c.comman_cpu.as_millis_f64()),
        ("CornMan CPU, receiving site", c.comman_cpu.as_millis_f64()),
    ]
}

/// Measures the per-RPC cost in the simulation: the latency difference
/// between a 1-subordinate and a local read transaction divided by the
/// extra message work, reported directly as the operation round time.
pub fn measured_rpc_ms(quick: bool) -> f64 {
    let reps = if quick { 10 } else { 100 };
    // A 1-subordinate read's measured operation time is the local
    // operation (3.5 ms) plus the remote operation round; the minimum
    // over repetitions strips scheduling jitter, and removing the
    // remote lock charge (0.5 ms) leaves the bare RPC.
    let remote = run_latency(
        1,
        false,
        CommitMode::TwoPhase,
        TwoPhaseVariant::Optimized,
        false,
        reps,
        31,
    );
    remote.op_time.min() - 3.5 - 0.5
}

/// Builds the §4.1 report.
pub fn run(quick: bool) -> Report {
    let c = CostModel::rt_pc_mach();
    let mut t = Table::new(vec!["COMPONENT", "ms"]);
    let mut sum = 0.0;
    for (name, ms) in decomposition(&c) {
        sum += ms;
        t.row(vec![name.to_string(), format!("{ms:.1}")]);
    }
    t.row(vec!["TOTAL".to_string(), format!("{sum:.1}")]);
    let mut text = t.render();
    let measured = measured_rpc_ms(quick);
    text.push_str(&format!(
        "\nmeasured RPC in simulation: {measured:.1} ms per call \
         (paper: 28.5 ms measured, 28.5 ms accounted — no extra or missing time)\n",
    ));
    Report::new("Section 4.1: Camelot RPC latency decomposition", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sums_to_28_5() {
        let sum: f64 = decomposition(&CostModel::rt_pc_mach())
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert!((sum - 28.5).abs() < 1e-9);
    }

    #[test]
    fn measured_rpc_close_to_29() {
        let m = measured_rpc_ms(true);
        assert!(
            (27.0..32.0).contains(&m),
            "measured rpc {m} vs model 29 (28.5 accounted + lock charge)"
        );
    }
}
