//! Experiment runners: latency and throughput sweeps over the
//! simulated world.

use camelot_core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot_net::Outcome;
use camelot_node::{AppSpec, World, WorldConfig};
use camelot_sim::{Scheduler, Series};
use camelot_types::{Duration, ObjectId, ServerId, SiteId, Time};

/// Result of one latency experiment (one configuration, many
/// repetitions).
#[derive(Debug)]
pub struct LatencyResult {
    /// End-to-end transaction latency (ms).
    pub total: Series,
    /// Transaction-management-only latency: total minus the §4.2
    /// operation-cost constant (3.5 + 29.5·n ms).
    pub tm_only: Series,
    /// Measured time inside operation calls (ms) — exceeds the
    /// constant exactly when operations waited for locks.
    pub op_time: Series,
}

/// Runs the paper's basic latency experiment: a minimal transaction on
/// a coordinator and `subs` subordinate sites, repeated `reps` times
/// back to back (as in §4.2, where the same application re-runs the
/// transaction and the previous transaction's lock release interleaves
/// with the next one's operations).
pub fn run_latency(
    subs: u32,
    write: bool,
    mode: CommitMode,
    variant: TwoPhaseVariant,
    multicast: bool,
    reps: u32,
    seed: u64,
) -> LatencyResult {
    let mut engine = EngineConfig::for_variant(variant);
    // Keep commit-ack flushes prompt so back-to-back transactions see
    // realistic piggyback traffic.
    engine.ack_flush_interval = Duration::from_millis(50);
    let mut cfg = WorldConfig::latency(subs + 1, engine, seed);
    cfg.net.multicast = multicast;
    // Per-process CPU overhead the paper's static analysis ignores;
    // calibrated so the local update lands near the measured 31 ms.
    cfg.tm.hop_overhead_mean = Duration::from_micros(600);
    let sub_sites: Vec<SiteId> = (2..=subs + 1).map(SiteId).collect();
    let spec = AppSpec::minimal(SiteId(1), &sub_sites, write, mode, reps);
    let mut world = World::new(cfg);
    let app = world.add_app(spec);
    let mut sched = Scheduler::new(seed);
    world.start(&mut sched);
    let finished = world.run(&mut sched, Time(3_600_000_000));
    assert!(finished, "latency experiment did not finish");
    world.settle(&mut sched, Duration::from_secs(5));
    let op_constant = 3.5 + 29.5 * subs as f64;
    let mut total = Series::new();
    let mut tm_only = Series::new();
    let mut op_time = Series::new();
    for r in world.records(app) {
        assert_eq!(r.outcome, Outcome::Committed, "minimal txns must commit");
        let ms = r.latency().as_millis_f64();
        total.add(ms);
        tm_only.add((ms - op_constant).max(0.0));
        op_time.add(r.op_time.as_millis_f64());
    }
    LatencyResult {
        total,
        tm_only,
        op_time,
    }
}

/// Result of one throughput experiment.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Committed transactions per second over the measured window.
    pub tps: f64,
    /// Platter writes per second (shows what group commit saves).
    pub writes_per_sec: f64,
}

/// Runs the paper's throughput experiment: `pairs` application/server
/// pairs (each pair has its own server, so operation processing never
/// bottlenecks) execute minimal local transactions until `txns` each;
/// TPS is total transactions over elapsed virtual time.
pub fn run_throughput(
    threads: usize,
    pairs: u32,
    write: bool,
    group_commit: bool,
    txns: u32,
    seed: u64,
) -> ThroughputResult {
    let cfg = WorldConfig::throughput(threads, group_commit, pairs, seed);
    let mut world = World::new(cfg);
    for k in 0..pairs {
        let mut spec = AppSpec::minimal(SiteId(1), &[], write, CommitMode::TwoPhase, txns);
        spec.ops[0].server = ServerId(k + 1);
        spec.ops[0].object = ObjectId(10_000 + k as u64);
        world.add_app(spec);
    }
    let mut sched = Scheduler::new(seed);
    world.start(&mut sched);
    let finished = world.run(&mut sched, Time(3_600_000_000));
    assert!(finished, "throughput experiment did not finish");
    let elapsed = sched.now().as_secs_f64();
    let committed: usize = (0..pairs as usize)
        .map(|a| {
            world
                .records(a)
                .iter()
                .filter(|r| r.outcome == Outcome::Committed)
                .count()
        })
        .sum();
    let writes = world.platter_writes(SiteId(1));
    ThroughputResult {
        tps: committed as f64 / elapsed,
        writes_per_sec: writes as f64 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_runner_produces_reps_samples() {
        let r = run_latency(
            0,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            10,
            42,
        );
        assert_eq!(r.total.count(), 10);
        // Local update: static 24.5; measured must exceed it (jitter
        // is off for local transactions but contention from
        // back-to-back lock drops can add a little).
        assert!(r.total.mean() >= 24.5, "mean {}", r.total.mean());
        assert!(r.tm_only.mean() >= 20.0);
    }

    #[test]
    fn distributed_latency_exceeds_local() {
        let local = run_latency(
            0,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            5,
            1,
        );
        let dist = run_latency(
            1,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            5,
            1,
        );
        assert!(dist.total.mean() > local.total.mean() + 50.0);
    }

    #[test]
    fn throughput_runner_reports_tps() {
        let r = run_throughput(5, 2, false, true, 20, 3);
        assert!(r.tps > 5.0, "tps {}", r.tps);
        assert_eq!(r.writes_per_sec, 0.0, "reads never hit the platter");
        let w = run_throughput(5, 2, true, true, 20, 3);
        assert!(w.writes_per_sec > 1.0, "updates write the log");
    }
}
