//! §4.2 multicast result — "multicasting messages from coordinator to
//! subordinates reduces variance substantially, suggesting that much
//! of the variance is created by the coordinator's repeated sends".
//!
//! The experiment: the Figure-2 optimized write at 1–3 subordinates,
//! once with sequential unicast (each prepare/commit send pays the
//! 1.7 ms datagram cycle time and its own jitter draw) and once with
//! multicast (one send slot covers all subordinates). The conclusion
//! to reproduce: means barely move ("multicast does not reduce commit
//! latency"), standard deviations drop.

use camelot_core::{CommitMode, TwoPhaseVariant};
use camelot_sim::Series;

use crate::fmt::{mean_sd, Report, Table};
use crate::runner::run_latency;

/// Result rows: per subordinate count, unicast and multicast series.
pub fn sweep(quick: bool) -> Vec<(u32, Series, Series)> {
    // A variance comparison needs real sample sizes even in quick
    // mode; these runs are cheap (one site pair, no disk).
    let reps = if quick { 150 } else { 400 };
    let mut out = Vec::new();
    for subs in 1..=3u32 {
        let uni = run_latency(
            subs,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            false,
            reps,
            7000 + subs as u64,
        );
        let multi = run_latency(
            subs,
            true,
            CommitMode::TwoPhase,
            TwoPhaseVariant::Optimized,
            true,
            reps,
            7000 + subs as u64,
        );
        out.push((subs, uni.total, multi.total));
    }
    out
}

/// Builds the multicast report.
pub fn run(quick: bool) -> Report {
    let rows = sweep(quick);
    let mut t = Table::new(vec!["SUBS", "UNICAST mean (sd)", "MULTICAST mean (sd)"]);
    for (subs, uni, multi) in &rows {
        t.row(vec![
            format!("{subs}"),
            mean_sd(uni.mean(), uni.stddev()),
            mean_sd(multi.mean(), multi.stddev()),
        ]);
    }
    let mut text = t.render();
    text.push_str(
        "\npaper: multicast does not reduce commit latency, but reduces its \
         variance substantially.\n",
    );
    Report::new("Section 4.2: Multicast vs sequential sends", text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_cuts_variance_at_three_subs() {
        let rows = sweep(true);
        let (_, uni, multi) = &rows[2];
        assert!(
            multi.stddev() < uni.stddev(),
            "multicast sd {} must be below unicast sd {}",
            multi.stddev(),
            uni.stddev()
        );
    }

    #[test]
    fn multicast_does_not_change_the_mean_much() {
        let rows = sweep(true);
        for (subs, uni, multi) in &rows {
            let rel = (uni.mean() - multi.mean()).abs() / uni.mean();
            assert!(
                rel < 0.15,
                "{subs} subs: means should be close (uni {}, multi {})",
                uni.mean(),
                multi.mean()
            );
        }
    }
}
