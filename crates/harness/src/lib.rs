//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4) on the simulated Camelot.
//!
//! Each experiment module exposes a `run(quick) -> Report` function;
//! `quick = true` uses fewer repetitions (for tests), `false` the full
//! counts (for `cargo bench`). Reports carry both formatted text
//! (printed by the bench targets) and structured rows (asserted by
//! tests). `EXPERIMENTS.md` records the paper-vs-measured comparison
//! produced by these modules.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — RT PC / Mach benchmarks |
//! | [`table2`] | Table 2 — latency of Camelot primitives |
//! | [`table3`] | Table 3 — static vs empirical latency breakdown |
//! | [`fig2`] | Figure 2 — two-phase commit latency vs subordinates |
//! | [`fig3`] | Figure 3 — non-blocking commit latency |
//! | [`fig45`] | Figures 4 & 5 — update/read throughput vs pairs |
//! | [`sec41`] | §4.1 — RPC latency decomposition |
//! | [`multicast`] | §4.2 — multicast variance reduction |
//! | [`contention`] | §4.2 — back-to-back lock contention analysis |
//! | [`ablation`] | extra — delayed-commit & group-commit ablations |
//! | [`counts`] | extra — measured primitive counts per protocol |

pub mod ablation;
pub mod contention;
pub mod counts;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod fmt;
pub mod multicast;
pub mod runner;
pub mod sec41;
pub mod staticpath;
pub mod table1;
pub mod table2;
pub mod table3;

pub use fmt::Report;
pub use runner::{run_latency, run_throughput, LatencyResult};
