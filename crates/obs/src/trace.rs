//! Per-family trace timelines in a bounded per-site ring.
//!
//! A [`TraceRing`] holds the last `capacity` [`TraceEvent`]s emitted
//! at one site. Emission claims a sequence number with one relaxed
//! atomic increment, stamps the event with microseconds since the
//! ring's epoch, and writes it into slot `seq % capacity` under that
//! slot's mutex — so concurrent writers never tear an event, and when
//! the ring wraps the oldest undrained event is overwritten and the
//! drop counter incremented. Slot locks are uncontended except when
//! two writers land exactly `capacity` events apart.
//!
//! Engines and batchers hold a [`Tracer`] — a cheap cloneable handle
//! that is a no-op when tracing is off, so the sans-io state machines
//! stay free of any timing or I/O concern.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use camelot_types::{FamilyId, ServerId, SiteId};

/// One step in a transaction family's timeline (or a site-level event
/// when `family` is `None`). All payloads are small and `Copy`; message
/// and purpose names are the static identifiers used on the wire and
/// in the WAL, so serialization never allocates per event beyond the
/// output string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A top-level transaction began at this site (the family's
    /// commitment coordinator).
    Begin,
    /// A nested transaction began within the family.
    BeginNested,
    /// A data server joined the family at this site (first lock
    /// acquisition on behalf of the family).
    Join { server: ServerId },
    /// The application asked the coordinator to commit the top-level
    /// transaction under `mode` ("2pc" or "nb").
    CommitCall { mode: &'static str },
    /// A local data server voted in phase one.
    ServerVote {
        server: ServerId,
        vote: &'static str,
    },
    /// A TranMan datagram left this site; `piggyback` counts the acks
    /// riding along.
    DatagramSend {
        to: SiteId,
        msg: &'static str,
        piggyback: u32,
    },
    /// An off-critical-path message travelled piggybacked on the
    /// datagram just sent instead of alone (paper §3.3).
    Piggybacked { to: SiteId, msg: &'static str },
    /// A TranMan datagram arrived at this site.
    DatagramRecv { from: SiteId, msg: &'static str },
    /// A log record entered the WAL pipeline. `lazy` distinguishes an
    /// append-without-force (the delayed-commit optimization) from a
    /// critical-path force.
    LogEnqueue { purpose: &'static str, lazy: bool },
    /// The WAL pipeline reported the record durable.
    LogDurable { purpose: &'static str, lazy: bool },
    /// The group-commit batcher started a platter write covering log
    /// bytes up to `upto` (site-level event).
    BatchStart { upto: u64 },
    /// That platter write completed; the covered forces are released
    /// (site-level event).
    BatchDurable { upto: u64 },
    /// The commit protocol resolved the family at this site.
    Decision { outcome: &'static str },
    /// The application's commit/abort call returned.
    Resolved { outcome: &'static str },
    /// Non-blocking termination: a subordinate began gathering state
    /// to take over coordination.
    TakeoverStart,
    /// The takeover found itself blocked on an unreachable quorum.
    TakeoverBlocked,
    /// An envelope was serialized and framed for a real socket
    /// (site-level event; `bytes` is the framed size — the payload the
    /// kernel will copy, the cost Mach message passing hid in-process).
    WireEncode { bytes: u32 },
    /// A received frame passed magic/version/CRC checks and decoded
    /// back into an envelope (site-level event).
    WireDecode { bytes: u32 },
    /// A frame left this site through a kernel socket (site-level
    /// event).
    SocketSend { to: SiteId, bytes: u32 },
    /// A frame arrived from a kernel socket (site-level event).
    SocketRecv { from: SiteId, bytes: u32 },
    /// A frame was given up on at the syscall layer — a UDP `send_to`
    /// error, a TCP connect failure or write failure/timeout. To the
    /// protocol this is a lost datagram (site-level event).
    SocketSendFailed { to: SiteId },
    /// A full per-peer send queue evicted its oldest frame to accept a
    /// new one (site-level event).
    SendQueueDrop { to: SiteId },
    /// The site was killed (site-level event).
    Crash,
    /// The site restarted and ran recovery (site-level event).
    Restart,
    /// Recovery re-established this family from the durable log.
    Recovered { state: &'static str },
}

impl TraceEventKind {
    /// Stable snake_case name used as the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Begin => "begin",
            TraceEventKind::BeginNested => "begin_nested",
            TraceEventKind::Join { .. } => "join",
            TraceEventKind::CommitCall { .. } => "commit_call",
            TraceEventKind::ServerVote { .. } => "server_vote",
            TraceEventKind::DatagramSend { .. } => "datagram_send",
            TraceEventKind::Piggybacked { .. } => "piggybacked",
            TraceEventKind::DatagramRecv { .. } => "datagram_recv",
            TraceEventKind::LogEnqueue { .. } => "log_enqueue",
            TraceEventKind::LogDurable { .. } => "log_durable",
            TraceEventKind::BatchStart { .. } => "batch_start",
            TraceEventKind::BatchDurable { .. } => "batch_durable",
            TraceEventKind::Decision { .. } => "decision",
            TraceEventKind::Resolved { .. } => "resolved",
            TraceEventKind::TakeoverStart => "takeover_start",
            TraceEventKind::TakeoverBlocked => "takeover_blocked",
            TraceEventKind::WireEncode { .. } => "wire_encode",
            TraceEventKind::WireDecode { .. } => "wire_decode",
            TraceEventKind::SocketSend { .. } => "socket_send",
            TraceEventKind::SocketRecv { .. } => "socket_recv",
            TraceEventKind::SocketSendFailed { .. } => "socket_send_failed",
            TraceEventKind::SendQueueDrop { .. } => "send_queue_drop",
            TraceEventKind::Crash => "crash",
            TraceEventKind::Restart => "restart",
            TraceEventKind::Recovered { .. } => "recovered",
        }
    }
}

/// One timestamped, site- and family-attributed trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-site emission sequence number (dense, starts at 0).
    pub seq: u64,
    /// Site that emitted the event.
    pub site: SiteId,
    /// Microseconds since the ring's epoch. Rings created by one
    /// cluster share an epoch, so timelines from different sites
    /// interleave on this field.
    pub at_us: u64,
    /// Family the event belongs to; `None` for site-level events
    /// (batch starts, crashes, restarts).
    pub family: Option<FamilyId>,
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// One JSON object, no trailing newline. All strings are static
    /// identifiers, so no escaping is needed.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"site\":{},\"us\":{}",
            self.seq, self.site.0, self.at_us
        );
        if let Some(f) = self.family {
            let _ = write!(s, ",\"family\":\"{f}\"");
        }
        let _ = write!(s, ",\"ev\":\"{}\"", self.kind.name());
        match self.kind {
            TraceEventKind::Join { server } | TraceEventKind::ServerVote { server, .. } => {
                let _ = write!(s, ",\"server\":{}", server.0);
            }
            _ => {}
        }
        match self.kind {
            TraceEventKind::CommitCall { mode } => {
                let _ = write!(s, ",\"mode\":\"{mode}\"");
            }
            TraceEventKind::ServerVote { vote, .. } => {
                let _ = write!(s, ",\"vote\":\"{vote}\"");
            }
            TraceEventKind::DatagramSend { to, msg, piggyback } => {
                let _ = write!(
                    s,
                    ",\"to\":{},\"msg\":\"{msg}\",\"piggyback\":{piggyback}",
                    to.0
                );
            }
            TraceEventKind::Piggybacked { to, msg } => {
                let _ = write!(s, ",\"to\":{},\"msg\":\"{msg}\"", to.0);
            }
            TraceEventKind::DatagramRecv { from, msg } => {
                let _ = write!(s, ",\"from\":{},\"msg\":\"{msg}\"", from.0);
            }
            TraceEventKind::LogEnqueue { purpose, lazy }
            | TraceEventKind::LogDurable { purpose, lazy } => {
                let _ = write!(s, ",\"purpose\":\"{purpose}\",\"lazy\":{lazy}");
            }
            TraceEventKind::BatchStart { upto } | TraceEventKind::BatchDurable { upto } => {
                let _ = write!(s, ",\"upto\":{upto}");
            }
            TraceEventKind::Decision { outcome } | TraceEventKind::Resolved { outcome } => {
                let _ = write!(s, ",\"outcome\":\"{outcome}\"");
            }
            TraceEventKind::Recovered { state } => {
                let _ = write!(s, ",\"state\":\"{state}\"");
            }
            TraceEventKind::WireEncode { bytes } | TraceEventKind::WireDecode { bytes } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            TraceEventKind::SocketSend { to, bytes } => {
                let _ = write!(s, ",\"to\":{},\"bytes\":{bytes}", to.0);
            }
            TraceEventKind::SocketRecv { from, bytes } => {
                let _ = write!(s, ",\"from\":{},\"bytes\":{bytes}", from.0);
            }
            TraceEventKind::SocketSendFailed { to } | TraceEventKind::SendQueueDrop { to } => {
                let _ = write!(s, ",\"to\":{}", to.0);
            }
            _ => {}
        }
        s.push('}');
        s
    }
}

/// Renders events as JSON Lines (one object per line, trailing
/// newline when non-empty).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 96);
    for e in events {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

/// Bounded per-site trace buffer. See the module docs for the
/// concurrency story.
pub struct TraceRing {
    site: SiteId,
    epoch: Instant,
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Mutex<Option<TraceEvent>>]>,
}

impl TraceRing {
    /// A ring for `site` holding the newest `capacity` events.
    /// `epoch` is the zero point for timestamps; rings of one cluster
    /// share it so cross-site timelines interleave.
    pub fn new(site: SiteId, capacity: usize, epoch: Instant) -> Arc<TraceRing> {
        assert!(capacity > 0, "trace ring needs at least one slot");
        Arc::new(TraceRing {
            site,
            epoch,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        })
    }

    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Records one event. Overwrites the oldest undrained event when
    /// the ring is full (incrementing [`TraceRing::dropped`]); never
    /// tears: readers see a complete event or none.
    pub fn emit(&self, family: Option<FamilyId>, kind: TraceEventKind) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            site: self.site,
            at_us: self.epoch.elapsed().as_micros() as u64,
            family,
            kind,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        if slot.lock().replace(ev).is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes every buffered event, oldest first. Events emitted
    /// concurrently with the drain land in the next drain.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.slots.iter().filter_map(|s| s.lock().take()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events overwritten before anyone drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events emitted since creation.
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

/// Cheap cloneable emission handle. `Tracer::default()` is disabled
/// and every emit through it is a branch on a `None` — the sans-io
/// engines carry one unconditionally.
#[derive(Clone, Default)]
pub struct Tracer {
    ring: Option<Arc<TraceRing>>,
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer { ring: None }
    }

    /// A tracer writing into `ring`.
    pub fn attached(ring: Arc<TraceRing>) -> Tracer {
        Tracer { ring: Some(ring) }
    }

    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Emits one event attributed to `family` (or site-level when
    /// `None`).
    #[inline]
    pub fn emit(&self, family: Option<FamilyId>, kind: TraceEventKind) {
        if let Some(ring) = &self.ring {
            ring.emit(family, kind);
        }
    }

    /// Emits one family-attributed event.
    #[inline]
    pub fn family(&self, family: FamilyId, kind: TraceEventKind) {
        self.emit(Some(family), kind);
    }

    /// Emits one site-level event.
    #[inline]
    pub fn site_event(&self, kind: TraceEventKind) {
        self.emit(None, kind);
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.ring.is_some() { "on" } else { "off" }
        )
    }
}

/// Merges already-drained per-site timelines into one cluster-wide
/// timeline ordered by timestamp, then site, then sequence number.
pub fn merge_timelines(mut events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.sort_by_key(|e| (e.at_us, e.site, e.seq));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fam(seq: u64) -> FamilyId {
        FamilyId {
            origin: SiteId(1),
            seq,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops_on_wraparound() {
        let ring = TraceRing::new(SiteId(1), 4, Instant::now());
        for i in 0..10 {
            ring.emit(Some(fam(i)), TraceEventKind::Begin);
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 4, "ring holds only its capacity");
        let seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "the oldest events were dropped");
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.emitted(), 10);
        // Drained slots are empty; a second drain yields nothing.
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn ring_never_tears_events_under_concurrent_emission() {
        let ring = TraceRing::new(SiteId(7), 64, Instant::now());
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let ring = ring.clone();
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Redundant encoding: family.seq must equal the
                        // datagram's piggyback count and the destination
                        // must match the writer thread, so a torn write
                        // (fields from two events) is detectable.
                        ring.emit(
                            Some(FamilyId {
                                origin: SiteId(t + 100),
                                seq: i,
                            }),
                            TraceEventKind::DatagramSend {
                                to: SiteId(t + 100),
                                msg: "Prepare",
                                piggyback: i as u32,
                            },
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let drained = ring.drain();
        for e in &drained {
            let f = e.family.expect("every event carries a family");
            match e.kind {
                TraceEventKind::DatagramSend { to, piggyback, .. } => {
                    assert_eq!(to, f.origin, "torn event: thread fields disagree");
                    assert_eq!(piggyback as u64, f.seq, "torn event: seq fields disagree");
                }
                _ => panic!("unexpected kind"),
            }
        }
        // Every emission is accounted for: still buffered or dropped.
        assert_eq!(drained.len() as u64 + ring.dropped(), ring.emitted());
        assert_eq!(ring.emitted(), 20_000);
    }

    #[test]
    fn jsonl_renders_one_valid_object_per_line() {
        let ring = TraceRing::new(SiteId(2), 8, Instant::now());
        ring.emit(Some(fam(3)), TraceEventKind::Begin);
        ring.emit(
            Some(fam(3)),
            TraceEventKind::DatagramSend {
                to: SiteId(1),
                msg: "Prepare",
                piggyback: 1,
            },
        );
        ring.emit(None, TraceEventKind::BatchStart { upto: 4096 });
        let out = to_jsonl(&ring.drain());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\":0,\"site\":2,"));
        assert!(lines[0].contains("\"family\":\"F1.3\""));
        assert!(lines[0].contains("\"ev\":\"begin\""));
        assert!(lines[1].contains("\"msg\":\"Prepare\"") && lines[1].contains("\"piggyback\":1"));
        assert!(
            !lines[2].contains("family"),
            "site-level events carry no family field"
        );
        assert!(lines[2].contains("\"upto\":4096"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.family(fam(1), TraceEventKind::Begin);
        t.site_event(TraceEventKind::Crash);
    }
}
