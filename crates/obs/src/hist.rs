//! Fixed-bucket latency histograms per commit phase.
//!
//! Buckets are powers of two of microseconds: bucket 0 holds exact
//! zeros, bucket `k` (k ≥ 1) holds `[2^(k-1), 2^k)` µs. Because the
//! bucket layout is fixed and position-indexed, histograms recorded at
//! different sites (or in different runs) merge by element-wise
//! addition — merging is associative and commutative, so cluster-wide
//! percentiles are exact over the merged counts regardless of merge
//! order. Percentile reads return the upper bound of the bucket the
//! rank falls in (clamped to the observed maximum), so a reported p99
//! never understates the true p99 by more than one bucket width.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration as StdDuration;

use camelot_types::wire::{Reader, Wire, Writer};
use camelot_types::{CamelotError, Result};

use crate::audit::AuditProtocol;

/// Number of buckets; bucket 39 is open-ended above ~2^38 µs (≈ 76 h).
pub const BUCKETS: usize = 40;

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive-exclusive `[lo, hi)` bounds of bucket `i` in µs (the top
/// bucket's `hi` is `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS);
    match i {
        0 => (0, 1),
        _ if i == BUCKETS - 1 => (1 << (i - 1), u64::MAX),
        _ => (1 << (i - 1), 1 << i),
    }
}

/// Write side: relaxed atomics only, safe to hammer from every
/// runtime thread.
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    pub fn record_us(&self, us: u64) {
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn record(&self, d: StdDuration) {
        self.record_us(d.as_micros() as u64);
    }

    /// A plain mergeable copy of the current counts.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Read side: a plain snapshot. Merge snapshots from many sites, then
/// read percentiles off the combined counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Element-wise addition; associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count()).unwrap_or(0)
    }

    /// Latency at percentile `p` (0 < p ≤ 100) in µs: the upper bound
    /// of the bucket containing that rank, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.saturating_sub(1).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Compact JSON summary (`{"n":..,"p50":..,"p95":..,"p99":..,
    /// "mean":..,"max":..}`) — the shape bench output and the scope
    /// collector both emit.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"n\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}}",
            self.count(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.mean_us(),
            self.max_us()
        )
    }
}

/// Sparse wire encoding: most phase histograms have a handful of hot
/// buckets out of [`BUCKETS`], so we ship `(index, count)` pairs for
/// the nonzero buckets only, then `sum_us`/`max_us`. Decode rejects
/// out-of-range bucket indices so a corrupt frame cannot index out of
/// bounds.
impl Wire for Histogram {
    fn encode(&self, w: &mut Writer) {
        let nonzero: Vec<(u8, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| (i as u8, *c))
            .collect();
        w.put_u8(nonzero.len() as u8);
        for (i, c) in nonzero {
            w.put_u8(i);
            w.put_u64(c);
        }
        w.put_u64(self.sum_us);
        w.put_u64(self.max_us);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.get_u8()?;
        let mut h = Histogram::default();
        for _ in 0..n {
            let i = r.get_u8()? as usize;
            if i >= BUCKETS {
                return Err(CamelotError::Codec(format!(
                    "histogram bucket {i} out of range"
                )));
            }
            h.counts[i] = r.get_u64()?;
        }
        h.sum_us = r.get_u64()?;
        h.max_us = r.get_u64()?;
        Ok(h)
    }
}

/// The commit phases the runtime times. Client-visible call phases
/// (begin / operation / commit) reproduce the paper's Table 3 latency
/// breakdown; the pipeline phases (force wait, platter write, shard
/// lock wait) attribute where inside the TranMan that time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `begin_transaction` call, client-observed.
    BeginCall,
    /// One read/write server operation, client-observed (includes lock
    /// acquisition at the owning server).
    OpCall,
    /// Top-level commit under two-phase commitment, client-observed.
    Commit2pc,
    /// Top-level commit under non-blocking commitment,
    /// client-observed.
    CommitNb,
    /// Force enqueue → batcher reports it durable (group-commit
    /// residence, paper §3.5).
    ForceWait,
    /// One platter write in the pipelined disk thread.
    PlatterWrite,
    /// Wait to acquire an engine shard's lock in a TranMan worker.
    ShardLockWait,
    /// Queued execution mode: residence of a job in its data shard's
    /// FIFO operation queue (enqueue → dequeue by the shard worker).
    QueueWait,
    /// Queued execution mode: *depth* of the target shard queue
    /// observed at enqueue time. Samples are counts of queued jobs,
    /// not microseconds — percentiles read as "jobs ahead of this
    /// one", reusing the power-of-two bucket layout.
    QueueDepth,
}

/// Number of [`Phase`] variants (array sizes below).
const NPHASES: usize = 9;

impl Phase {
    pub const ALL: [Phase; NPHASES] = [
        Phase::BeginCall,
        Phase::OpCall,
        Phase::Commit2pc,
        Phase::CommitNb,
        Phase::ForceWait,
        Phase::PlatterWrite,
        Phase::ShardLockWait,
        Phase::QueueWait,
        Phase::QueueDepth,
    ];

    /// Stable snake_case name (JSON keys, bench output).
    pub fn name(self) -> &'static str {
        match self {
            Phase::BeginCall => "begin_call",
            Phase::OpCall => "op_call",
            Phase::Commit2pc => "commit_2pc",
            Phase::CommitNb => "commit_nb",
            Phase::ForceWait => "force_wait",
            Phase::PlatterWrite => "platter_write",
            Phase::ShardLockWait => "shard_lock_wait",
            Phase::QueueWait => "queue_wait",
            Phase::QueueDepth => "queue_depth",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).unwrap()
    }
}

/// One atomic histogram per [`Phase`]; lives in each site's shared
/// state.
#[derive(Default)]
pub struct PhaseHistograms {
    hists: [AtomicHistogram; NPHASES],
}

impl PhaseHistograms {
    pub fn record_us(&self, phase: Phase, us: u64) {
        self.hists[phase.index()].record_us(us);
    }

    pub fn record(&self, phase: Phase, d: StdDuration) {
        self.hists[phase.index()].record(d);
    }

    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            hists: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }
}

/// Plain per-phase snapshot; merges element-wise like [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    hists: [Histogram; NPHASES],
}

impl PhaseSnapshot {
    pub fn get(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    pub fn merge(&mut self, other: &PhaseSnapshot) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Phases with at least one sample, in declaration order.
    pub fn non_empty(&self) -> impl Iterator<Item = (Phase, &Histogram)> {
        Phase::ALL
            .iter()
            .map(|p| (*p, self.get(*p)))
            .filter(|(_, h)| !h.is_empty())
    }
}

impl Wire for PhaseSnapshot {
    fn encode(&self, w: &mut Writer) {
        for h in &self.hists {
            w.put(h);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut s = PhaseSnapshot::default();
        for h in s.hists.iter_mut() {
            *h = r.get()?;
        }
        Ok(s)
    }
}

/// Phase histograms keyed by the [`AuditProtocol`] a transaction
/// committed under, so one mixed workload yields per-protocol
/// p50/p95/p99 breakdowns instead of a single blended commit
/// distribution. Only client-observed commit phases are keyed (the
/// protocol of a force or platter write is not knowable at record
/// time).
#[derive(Default)]
pub struct ProtocolPhaseHistograms {
    per: [PhaseHistograms; 5],
}

impl ProtocolPhaseHistograms {
    pub fn record(&self, protocol: AuditProtocol, phase: Phase, d: StdDuration) {
        self.per[protocol.index()].record(phase, d);
    }

    pub fn record_us(&self, protocol: AuditProtocol, phase: Phase, us: u64) {
        self.per[protocol.index()].record_us(phase, us);
    }

    pub fn snapshot(&self) -> ProtocolPhaseSnapshot {
        ProtocolPhaseSnapshot {
            per: std::array::from_fn(|i| self.per[i].snapshot()),
        }
    }
}

/// Plain snapshot of [`ProtocolPhaseHistograms`]; merges element-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolPhaseSnapshot {
    per: [PhaseSnapshot; 5],
}

impl ProtocolPhaseSnapshot {
    pub fn get(&self, protocol: AuditProtocol) -> &PhaseSnapshot {
        &self.per[protocol.index()]
    }

    pub fn merge(&mut self, other: &ProtocolPhaseSnapshot) {
        for (a, b) in self.per.iter_mut().zip(other.per.iter()) {
            a.merge(b);
        }
    }

    /// Protocols with at least one sample in any phase, in
    /// [`AuditProtocol::ALL`] order.
    pub fn non_empty(&self) -> impl Iterator<Item = (AuditProtocol, &PhaseSnapshot)> {
        AuditProtocol::ALL
            .iter()
            .map(|p| (*p, self.get(*p)))
            .filter(|(_, s)| s.non_empty().next().is_some())
    }
}

impl Wire for ProtocolPhaseSnapshot {
    fn encode(&self, w: &mut Writer) {
        for s in &self.per {
            w.put(s);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut p = ProtocolPhaseSnapshot::default();
        for s in p.per.iter_mut() {
            *s = r.get()?;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            // Every boundary value lands where the bounds claim.
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi - 1), i);
            assert_eq!(bucket_of(hi), i + 1);
        }
    }

    #[test]
    fn percentiles_bound_the_true_value() {
        let h = AtomicHistogram::default();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max_us(), 1000);
        // True p50 = 500; bucket [512,1024) upper bound clamps to max.
        let p50 = s.percentile(50.0);
        assert!((500..=1000).contains(&p50), "p50 {p50}");
        assert!(s.percentile(99.0) >= 990);
        assert_eq!(s.percentile(100.0), 1000);
        assert!(s.mean_us() >= 499 && s.mean_us() <= 501);
    }

    #[test]
    fn merge_is_associative_and_order_insensitive() {
        let mk = |vals: &[u64]| {
            let h = AtomicHistogram::default();
            for v in vals {
                h.record_us(*v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9000]);
        let b = mk(&[2, 2, 700]);
        let c = mk(&[0, 123_456]);
        // (a+b)+c == a+(b+c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // and equals recording everything into one histogram.
        let all = mk(&[1, 5, 9000, 2, 2, 700, 0, 123_456]);
        assert_eq!(ab_c, all);
        assert_eq!(ab_c.count(), 8);
        assert_eq!(ab_c.max_us(), 123_456);
    }

    #[test]
    fn protocol_keyed_histograms_stay_separate_and_merge() {
        let a = ProtocolPhaseHistograms::default();
        a.record_us(AuditProtocol::TwoPhaseDelayed, Phase::Commit2pc, 100);
        a.record_us(AuditProtocol::ReadOnly, Phase::Commit2pc, 10);
        let b = ProtocolPhaseHistograms::default();
        b.record_us(AuditProtocol::TwoPhaseDelayed, Phase::Commit2pc, 300);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(
            s.get(AuditProtocol::TwoPhaseDelayed)
                .get(Phase::Commit2pc)
                .count(),
            2
        );
        assert_eq!(
            s.get(AuditProtocol::ReadOnly).get(Phase::Commit2pc).count(),
            1
        );
        assert!(s
            .get(AuditProtocol::NonBlocking)
            .get(Phase::Commit2pc)
            .is_empty());
        let names: Vec<&str> = s.non_empty().map(|(p, _)| p.name()).collect();
        assert_eq!(names, vec!["2pc_delayed", "read_only"]);
    }

    #[test]
    fn histogram_wire_roundtrip_is_lossless() {
        let h = AtomicHistogram::default();
        for us in [0, 1, 17, 900, 900, 1_000_000, u64::MAX] {
            h.record_us(us);
        }
        let s = h.snapshot();
        let back = Histogram::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.percentile(50.0), s.percentile(50.0));
        // Empty histograms roundtrip too.
        let e = Histogram::default();
        assert_eq!(Histogram::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn histogram_wire_rejects_bad_bucket_index() {
        let mut w = camelot_types::wire::Writer::new();
        w.put_u8(1);
        w.put_u8(BUCKETS as u8); // out of range
        w.put_u64(3);
        w.put_u64(0);
        w.put_u64(0);
        assert!(Histogram::from_bytes(w.as_slice()).is_err());
    }

    #[test]
    fn snapshot_wire_roundtrips() {
        let ph = PhaseHistograms::default();
        ph.record_us(Phase::Commit2pc, 420);
        ph.record_us(Phase::ForceWait, 69);
        let s = ph.snapshot();
        assert_eq!(PhaseSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);

        let pp = ProtocolPhaseHistograms::default();
        pp.record_us(AuditProtocol::NonBlocking, Phase::CommitNb, 1234);
        pp.record_us(AuditProtocol::ReadOnly, Phase::Commit2pc, 5);
        let s = pp.snapshot();
        assert_eq!(ProtocolPhaseSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn summary_json_shape() {
        let h = AtomicHistogram::default();
        h.record_us(100);
        let j = h.snapshot().summary_json();
        assert!(j.starts_with("{\"n\":1,"), "{j}");
        assert!(j.contains("\"p50\":"), "{j}");
        assert!(j.contains("\"max\":100"), "{j}");
    }

    #[test]
    fn phase_snapshot_merges_per_phase() {
        let a = PhaseHistograms::default();
        a.record_us(Phase::Commit2pc, 100);
        a.record_us(Phase::ForceWait, 10);
        let b = PhaseHistograms::default();
        b.record_us(Phase::Commit2pc, 200);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.get(Phase::Commit2pc).count(), 2);
        assert_eq!(s.get(Phase::ForceWait).count(), 1);
        assert!(s.get(Phase::CommitNb).is_empty());
        let names: Vec<&str> = s.non_empty().map(|(p, _)| p.name()).collect();
        assert_eq!(names, vec!["commit_2pc", "force_wait"]);
    }
}
