//! Observability for the Camelot reproduction.
//!
//! The paper's entire method is accounting: §4.1 explains commit
//! latency by attributing every log force, datagram and context switch
//! on the critical path, and Tables 1–3 state the protocols' costs in
//! those primitives. This crate turns that accounting into runtime
//! instrumentation with three layers:
//!
//! - [`trace`] — per-transaction-family event timelines. Every
//!   protocol step (begin, join, prepare send/receive, vote, log
//!   enqueue → batch force → platter completion, decision, ack,
//!   takeover/recovery) is recorded as a [`TraceEvent`] into a bounded
//!   per-site [`TraceRing`] with relaxed-atomic sequencing, so the hot
//!   path pays one atomic increment and one uncontended slot lock.
//!   Timelines drain as JSONL for offline inspection and for chaos
//!   failure repros.
//! - [`hist`] — fixed-bucket (power-of-two) latency histograms per
//!   commit [`Phase`]. Buckets are position-indexed so histograms from
//!   different sites merge associatively; percentiles (p50/p95/p99)
//!   are read off the cumulative counts.
//! - [`audit`] — the protocol-cost auditor. It replays a completed
//!   family's timeline, counts critical-path forces, lazy appends and
//!   datagrams, and checks them against the paper's predicted
//!   [`Budget`] for the configuration (2PC standard/delayed,
//!   read-only, non-blocking). Tables 1–3 become a continuously
//!   checked invariant instead of a one-shot harness experiment.
//!
//! The crate depends only on `camelot-types`, so every other layer
//! (core engine, WAL batcher, real-thread runtime, chaos, benches) can
//! emit into it without dependency cycles.

pub mod audit;
pub mod hist;
pub mod trace;

pub use audit::{audit_family, budget_for, count_family, AuditCounts, AuditProtocol, Budget};
pub use hist::{
    AtomicHistogram, Histogram, Phase, PhaseHistograms, PhaseSnapshot, ProtocolPhaseHistograms,
    ProtocolPhaseSnapshot, BUCKETS,
};
pub use trace::{to_jsonl, TraceEvent, TraceEventKind, TraceRing, Tracer};
