//! The protocol-cost auditor.
//!
//! The paper states each commitment protocol's cost in critical-path
//! primitives (Tables 1–2): delayed-commit 2PC resolves an update in
//! two log forces plus one lazy commit record and three datagrams
//! (the ack piggybacks); standard 2PC pays the third force back and
//! sends the ack alone; a read-only transaction writes no log record
//! at all; non-blocking commitment costs four forces and five
//! critical-path messages plus acknowledgement/forget traffic. The
//! auditor replays a completed family's trace timeline, counts those
//! primitives, and checks them against the predicted [`Budget`] —
//! turning the tables into a continuously checked invariant.
//!
//! Force and lazy-append budgets are exact: the protocols are
//! deterministic in how many records they write for a fixed topology.
//! Datagram budgets are a `[min, max]` range because cleanup traffic
//! off the critical path (piggybacked vs. flushed acknowledgements,
//! forget notes) legitimately varies with timing.
//!
//! Budgets assume the minimal measured topology — one coordinator and
//! one subordinate site (`harness::counts::measure`'s shape). The
//! harness tests pin `budget_for` against `measure` so the two
//! accountings can never drift apart silently.

use camelot_types::FamilyId;

use crate::trace::{TraceEvent, TraceEventKind};

/// The protocol configuration a transaction family committed under,
/// as the auditor distinguishes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditProtocol {
    /// Two-phase commitment without the delayed-commit optimization
    /// (`TwoPhaseVariant::Unoptimized`), update transaction.
    TwoPhaseStandard,
    /// Two-phase commitment with delayed commit
    /// (`TwoPhaseVariant::Optimized`), update transaction.
    TwoPhaseDelayed,
    /// Read-only transaction under two-phase commitment: the
    /// read-only optimization elides every log write.
    ReadOnly,
    /// Non-blocking commitment, update transaction.
    NonBlocking,
    /// Read-only transaction under non-blocking commitment (one
    /// off-critical-path begin force).
    NonBlockingRead,
}

impl AuditProtocol {
    /// All variants in declaration order (array indexing for keyed
    /// histograms and JSON emission).
    pub const ALL: [AuditProtocol; 5] = [
        AuditProtocol::TwoPhaseStandard,
        AuditProtocol::TwoPhaseDelayed,
        AuditProtocol::ReadOnly,
        AuditProtocol::NonBlocking,
        AuditProtocol::NonBlockingRead,
    ];

    /// Position in [`AuditProtocol::ALL`].
    pub fn index(self) -> usize {
        AuditProtocol::ALL.iter().position(|p| *p == self).unwrap()
    }

    pub fn name(self) -> &'static str {
        match self {
            AuditProtocol::TwoPhaseStandard => "2pc_standard",
            AuditProtocol::TwoPhaseDelayed => "2pc_delayed",
            AuditProtocol::ReadOnly => "read_only",
            AuditProtocol::NonBlocking => "non_blocking",
            AuditProtocol::NonBlockingRead => "non_blocking_read",
        }
    }
}

/// Predicted primitive counts for one family under a protocol
/// configuration (1 coordinator + 1 subordinate topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    pub protocol: AuditProtocol,
    /// Synchronous log forces, exact.
    pub forces: u64,
    /// Lazy (non-forced) appends, exact — each one a force the
    /// delayed-commit optimization avoided.
    pub lazy_appends: u64,
    /// Datagrams including unavoidable cleanup, `[min, max]`.
    pub datagrams_min: u64,
    pub datagrams_max: u64,
}

/// The paper's cost table as budgets. Values match
/// `camelot_harness::counts::measure` for the same configuration
/// (asserted by the harness oracle tests).
pub fn budget_for(protocol: AuditProtocol) -> Budget {
    let (forces, lazy_appends, datagrams_min, datagrams_max) = match protocol {
        // Coordinator commit force + subordinate prepare force; the
        // subordinate commit record is lazy. Prepare, vote, commit on
        // the wire; the ack piggybacks when traffic allows, else one
        // flush datagram.
        AuditProtocol::TwoPhaseDelayed => (2, 1, 3, 4),
        // The optimization's saved force comes back as a forced
        // subordinate commit record, and the ack goes out alone.
        AuditProtocol::TwoPhaseStandard => (3, 0, 4, 4),
        // Read-only: no log writes anywhere; prepare + read-only vote.
        AuditProtocol::ReadOnly => (0, 0, 2, 2),
        // Begin + subordinate prepared + replicate + coordinator
        // commit forces; outcome record at the subordinate is lazy.
        // Prepare, vote, replicate, replicate-ack, outcome on the
        // critical path, plus outcome-ack and forget cleanup.
        AuditProtocol::NonBlocking => (4, 1, 5, 7),
        // Only the coordinator's off-critical-path begin force.
        AuditProtocol::NonBlockingRead => (1, 0, 2, 3),
    };
    Budget {
        protocol,
        forces,
        lazy_appends,
        datagrams_min,
        datagrams_max,
    }
}

/// Primitive counts extracted from one family's timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditCounts {
    pub forces: u64,
    pub lazy_appends: u64,
    pub datagrams: u64,
}

/// Counts the critical-path primitives `family` consumed across a
/// (cluster-wide) timeline.
pub fn count_family(family: FamilyId, events: &[TraceEvent]) -> AuditCounts {
    let mut c = AuditCounts::default();
    for e in events.iter().filter(|e| e.family == Some(family)) {
        match e.kind {
            TraceEventKind::LogEnqueue { lazy: false, .. } => c.forces += 1,
            TraceEventKind::LogEnqueue { lazy: true, .. } => c.lazy_appends += 1,
            TraceEventKind::DatagramSend { .. } => c.datagrams += 1,
            _ => {}
        }
    }
    c
}

impl Budget {
    /// Full check: forces and lazy appends exact, datagrams within
    /// `[min, max]`. For controlled single-transaction runs.
    pub fn check(&self, c: &AuditCounts) -> Result<(), String> {
        if c.forces != self.forces {
            return Err(self.violation("forces", c.forces, &self.forces.to_string()));
        }
        if c.lazy_appends != self.lazy_appends {
            return Err(self.violation(
                "lazy appends",
                c.lazy_appends,
                &self.lazy_appends.to_string(),
            ));
        }
        if c.datagrams < self.datagrams_min || c.datagrams > self.datagrams_max {
            return Err(self.violation(
                "datagrams",
                c.datagrams,
                &format!("{}..={}", self.datagrams_min, self.datagrams_max),
            ));
        }
        Ok(())
    }

    /// Floor check: at least the budgeted forces, lazy appends and
    /// minimum datagrams. For chaos runs on loaded machines, where
    /// timer-driven retries can legitimately add traffic but a
    /// protocol that *skips* a budgeted durability or message step is
    /// always broken (the `unsafe_no_commit_force` canary's exact
    /// failure shape).
    pub fn check_floor(&self, c: &AuditCounts) -> Result<(), String> {
        if c.forces < self.forces {
            return Err(self.violation("forces", c.forces, &format!(">={}", self.forces)));
        }
        if c.lazy_appends < self.lazy_appends {
            return Err(self.violation(
                "lazy appends",
                c.lazy_appends,
                &format!(">={}", self.lazy_appends),
            ));
        }
        if c.datagrams < self.datagrams_min {
            return Err(self.violation(
                "datagrams",
                c.datagrams,
                &format!(">={}", self.datagrams_min),
            ));
        }
        Ok(())
    }

    fn violation(&self, what: &str, got: u64, want: &str) -> String {
        format!(
            "protocol-cost audit [{}]: {} = {}, budget {}",
            self.protocol.name(),
            what,
            got,
            want
        )
    }
}

/// Audits one family's timeline against `budget` (full check),
/// returning the measured counts on success.
pub fn audit_family(
    family: FamilyId,
    events: &[TraceEvent],
    budget: &Budget,
) -> Result<AuditCounts, String> {
    let c = count_family(family, events);
    budget
        .check(&c)
        .map_err(|e| format!("{family}: {e}"))
        .map(|()| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_types::SiteId;

    fn ev(family: FamilyId, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq: 0,
            site: SiteId(1),
            at_us: 0,
            family: Some(family),
            kind,
        }
    }

    fn fam(seq: u64) -> FamilyId {
        FamilyId {
            origin: SiteId(1),
            seq,
        }
    }

    #[test]
    fn counts_only_the_named_family() {
        let f = fam(1);
        let other = fam(2);
        let events = vec![
            ev(
                f,
                TraceEventKind::LogEnqueue {
                    purpose: "CoordCommit",
                    lazy: false,
                },
            ),
            ev(
                f,
                TraceEventKind::LogEnqueue {
                    purpose: "SubCommitLazy",
                    lazy: true,
                },
            ),
            ev(
                other,
                TraceEventKind::LogEnqueue {
                    purpose: "CoordCommit",
                    lazy: false,
                },
            ),
            ev(
                f,
                TraceEventKind::DatagramSend {
                    to: SiteId(2),
                    msg: "Prepare",
                    piggyback: 0,
                },
            ),
            ev(
                f,
                TraceEventKind::LogDurable {
                    purpose: "CoordCommit",
                    lazy: false,
                },
            ),
        ];
        let c = count_family(f, &events);
        assert_eq!(
            c,
            AuditCounts {
                forces: 1,
                lazy_appends: 1,
                datagrams: 1
            }
        );
    }

    #[test]
    fn full_check_rejects_excess_and_missing_primitives() {
        let b = budget_for(AuditProtocol::TwoPhaseDelayed);
        let ok = AuditCounts {
            forces: 2,
            lazy_appends: 1,
            datagrams: 4,
        };
        assert!(b.check(&ok).is_ok());
        let missing_force = AuditCounts { forces: 1, ..ok };
        assert!(b.check(&missing_force).unwrap_err().contains("forces"));
        let extra_force = AuditCounts { forces: 3, ..ok };
        assert!(b.check(&extra_force).is_err());
        let chatty = AuditCounts { datagrams: 5, ..ok };
        assert!(b.check(&chatty).unwrap_err().contains("datagrams"));
    }

    #[test]
    fn floor_check_tolerates_retries_but_not_skipped_steps() {
        let b = budget_for(AuditProtocol::NonBlocking);
        let retried = AuditCounts {
            forces: 4,
            lazy_appends: 1,
            datagrams: 11,
        };
        assert!(b.check_floor(&retried).is_ok(), "extra traffic tolerated");
        // The unsafe_no_commit_force canary shape: a budgeted force
        // never happened.
        let skipped = AuditCounts {
            forces: 3,
            lazy_appends: 1,
            datagrams: 11,
        };
        assert!(b.check_floor(&skipped).is_err());
    }
}
