//! TranMan scaling on real threads (conclusion 3).
//!
//! Runs the real-thread runtime — not the simulator — with a
//! distributed-update workload and sweeps the TranMan worker count
//! against the group-commit policy. The paper's conclusion 3 predicts
//! the shape: with group commit **off** the disk is the bottleneck and
//! adding TranMan threads buys nothing (the curve is flat); with group
//! commit **on** the transaction manager is the bottleneck, so
//! throughput rises with the worker count — which it can only do
//! because the engine state is sharded rather than behind one lock.
//!
//! The modeled costs are paper-scale: a 5 ms platter write, a 100 µs
//! datagram, 700 µs of TranMan CPU per input (charged under the shard
//! lock). The sweep runs with the trace ring *enabled* — the bench
//! doubles as the overhead test for the tracing layer — and each run
//! reports per-phase latency percentiles (p50/p95/p99/max) off the
//! always-on phase histograms. After the sweep, a protocol-cost audit
//! phase runs one clean traced transaction per protocol configuration
//! and checks its primitive counts against the paper's budget; a
//! violation fails the bench (exit 1), which is what the CI smoke job
//! keys off. Run with `cargo bench --bench rt_scaling`; `QUICK=1`
//! shrinks the sweep for CI smoke runs. Results land in
//! `BENCH_rt_scaling.json` at the workspace root.

use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use camelot_core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot_net::Outcome;
use camelot_rt::{
    audit_family, budget_for, AuditProtocol, BatchPolicy, Cluster, PhaseSnapshot, RtConfig,
};
use camelot_types::{Duration, ObjectId, ServerId, SiteId};

const SITES: u32 = 2;
const CLIENTS: usize = 16; // 8 homed per site
const SRV: ServerId = ServerId(1);

struct RunResult {
    policy: &'static str,
    tm_threads: usize,
    commits: u64,
    elapsed_s: f64,
    commits_per_sec: f64,
    platter_writes: u64,
    mean_batch: f64,
    lock_wait_ms: f64,
    server_lock_waits: u64,
    phases: PhaseSnapshot,
    trace_events: u64,
    trace_dropped: u64,
}

fn policy_of(name: &str) -> BatchPolicy {
    match name {
        "immediate" => BatchPolicy::Immediate,
        "coalesce" => BatchPolicy::Coalesce,
        "window" => BatchPolicy::Window(Duration::from_millis(2)),
        other => panic!("unknown policy {other}"),
    }
}

/// One configuration: `CLIENTS` application threads each running
/// `txns` distributed update transactions (write home + write remote,
/// two-phase commit) on distinct objects.
fn run(policy: &'static str, tm_threads: usize, txns: u64) -> RunResult {
    let cfg = RtConfig {
        datagram_delay: StdDuration::from_micros(100),
        platter_delay: StdDuration::from_millis(5),
        batch: policy_of(policy),
        lazy_flush: StdDuration::from_millis(10),
        tm_threads,
        tm_service_time: StdDuration::from_micros(700),
        // Tracing stays ON for the whole sweep: the throughput numbers
        // are the overhead test for the trace ring's hot path.
        trace: true,
        trace_capacity: 64 * 1024,
        ..RtConfig::default()
    };
    let cluster = Arc::new(Cluster::new(SITES, cfg));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let cluster = cluster.clone();
        handles.push(std::thread::spawn(move || {
            let home = SiteId((c as u32 % SITES) + 1);
            let remote = SiteId((c as u32 + 1) % SITES + 1);
            let client = cluster.client(home);
            let obj = ObjectId(100 + c as u64);
            for i in 0..txns {
                let ctx = |what: &str, e| format!("client {c} txn {i}: {what}: {e:?}");
                let tid = client
                    .begin()
                    .unwrap_or_else(|e| panic!("{}", ctx("begin", e)));
                let value = i.to_le_bytes().to_vec();
                client
                    .write(&tid, home, SRV, obj, value.clone())
                    .unwrap_or_else(|e| panic!("{}", ctx("home write", e)));
                client
                    .write(&tid, remote, SRV, obj, value)
                    .unwrap_or_else(|e| panic!("{}", ctx("remote write", e)));
                let out = client
                    .commit(&tid, CommitMode::TwoPhase)
                    .unwrap_or_else(|e| panic!("{}", ctx("commit", e)));
                assert_eq!(out, Outcome::Committed);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cluster.stats();
    let commits = CLIENTS as u64 * txns;
    let platter_writes = stats.total_platter_writes();
    let forces: u64 = stats.sites.iter().map(|s| s.forces_satisfied).sum();
    let lock_wait_ms = stats.total_lock_wait().as_secs_f64() * 1e3;
    let server_lock_waits = stats.total_server_stats().lock_waits;
    let trace_events = cluster.drain_trace().len() as u64;
    let trace_dropped = cluster.trace_dropped();
    let cluster = Arc::try_unwrap(cluster).ok().expect("sole owner");
    cluster.shutdown();
    RunResult {
        policy,
        tm_threads,
        commits,
        elapsed_s: elapsed,
        commits_per_sec: commits as f64 / elapsed,
        platter_writes,
        mean_batch: if platter_writes == 0 {
            0.0
        } else {
            forces as f64 / platter_writes as f64
        },
        lock_wait_ms,
        server_lock_waits,
        phases: stats.phases(),
        trace_events,
        trace_dropped,
    }
}

/// JSON object of p50/p95/p99/max/mean (µs) and count for every
/// non-empty phase in `s`.
fn phases_json(s: &PhaseSnapshot) -> String {
    let mut parts = Vec::new();
    for (phase, h) in s.non_empty() {
        parts.push(format!(
            "\"{}\": {{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"max_us\": {}, \"mean_us\": {}}}",
            phase.name(),
            h.count(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.max_us(),
            h.mean_us()
        ));
    }
    format!("{{{}}}", parts.join(", "))
}

/// Post-sweep protocol-cost audit: one clean traced 1-subordinate
/// transaction per protocol configuration, counts checked against the
/// paper's budget (exact forces/lazy, datagrams in range). Returns
/// `(name, result)` per configuration.
fn audit_sweep() -> Vec<(&'static str, Result<String, String>)> {
    let configs: [(AuditProtocol, EngineConfig, CommitMode, bool); 4] = [
        (
            AuditProtocol::TwoPhaseDelayed,
            EngineConfig::default(),
            CommitMode::TwoPhase,
            true,
        ),
        (
            AuditProtocol::TwoPhaseStandard,
            EngineConfig::for_variant(TwoPhaseVariant::Unoptimized),
            CommitMode::TwoPhase,
            true,
        ),
        (
            AuditProtocol::ReadOnly,
            EngineConfig::default(),
            CommitMode::TwoPhase,
            false,
        ),
        (
            AuditProtocol::NonBlocking,
            EngineConfig::default(),
            CommitMode::NonBlocking,
            true,
        ),
    ];
    let mut out = Vec::new();
    for (protocol, engine, mode, write) in configs {
        let cfg = RtConfig {
            datagram_delay: StdDuration::from_millis(1),
            platter_delay: StdDuration::from_millis(1),
            engine,
            trace: true,
            ..RtConfig::default()
        };
        let cluster = Cluster::new(2, cfg);
        let client = cluster.client(SiteId(1));
        let tid = client.begin().expect("audit begin");
        if write {
            client
                .write(&tid, SiteId(1), SRV, ObjectId(1), b"a".to_vec())
                .expect("audit home write");
            client
                .write(&tid, SiteId(2), SRV, ObjectId(2), b"b".to_vec())
                .expect("audit remote write");
        } else {
            client
                .read(&tid, SiteId(1), SRV, ObjectId(1))
                .expect("audit home read");
            client
                .read(&tid, SiteId(2), SRV, ObjectId(2))
                .expect("audit remote read");
        }
        let outcome = client.commit(&tid, mode).expect("audit commit");
        assert_eq!(outcome, Outcome::Committed);
        // Let cleanup traffic (ack flush, lazy record flush) land —
        // it is part of the audited budget.
        std::thread::sleep(StdDuration::from_millis(400));
        let events = cluster.drain_trace();
        cluster.shutdown();
        let budget = budget_for(protocol);
        let result = audit_family(tid.family, &events, &budget).map(|c| {
            format!(
                "{} force(s) + {} lazy + {} datagram(s)",
                c.forces, c.lazy_appends, c.datagrams
            )
        });
        out.push((protocol.name(), result));
    }
    out
}

fn main() {
    let quick = camelot_bench::quick();
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let txns: u64 = if quick { 6 } else { 25 };
    let policies = ["immediate", "coalesce", "window"];

    println!("TranMan scaling on real threads ({SITES} sites, {CLIENTS} clients, {txns} distributed update txns each)");
    println!(
        "{:<10} {:>8} {:>9} {:>11} {:>8} {:>7} {:>10}",
        "policy", "threads", "commits", "commits/s", "writes", "batch", "lockwait"
    );
    let mut results: Vec<RunResult> = Vec::new();
    for &policy in &policies {
        for &t in threads {
            let r = run(policy, t, txns);
            println!(
                "{:<10} {:>8} {:>9} {:>11.1} {:>8} {:>7.1} {:>8.1}ms",
                r.policy,
                r.tm_threads,
                r.commits,
                r.commits_per_sec,
                r.platter_writes,
                r.mean_batch,
                r.lock_wait_ms
            );
            results.push(r);
        }
    }

    // The paper-shape check: group commit off => flat in threads;
    // group commit on => scales with threads.
    let tput = |policy: &str, t: usize| {
        results
            .iter()
            .find(|r| r.policy == policy && r.tm_threads == t)
            .map(|r| r.commits_per_sec)
            .unwrap_or(0.0)
    };
    // Both sweeps include 1 and 4 threads, so the ratio is comparable
    // between the smoke run and the full run.
    let hi = 4;
    let mut ratios = Vec::new();
    for &policy in &policies {
        let ratio = tput(policy, hi) / tput(policy, 1);
        println!("{policy}: {hi}-thread/1-thread throughput ratio = {ratio:.2}");
        ratios.push((policy, ratio));
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"rt_scaling\",\n");
    let config_text = format!(
        "sites={SITES} clients={CLIENTS} txns={txns} threads={threads:?} \
         policies={policies:?} tm_service_us=700 platter_ms=5"
    );
    json.push_str(&format!(
        "  \"stamp\": {},\n",
        camelot_bench::stamp_json(&config_text)
    ));
    json.push_str(&format!(
        "  \"sites\": {SITES},\n  \"clients\": {CLIENTS},\n  \"txns_per_client\": {txns},\n"
    ));
    json.push_str("  \"tm_service_time_us\": 700,\n  \"platter_delay_ms\": 5,\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"tm_threads\": {}, \"commits\": {}, \"elapsed_s\": {:.3}, \
             \"commits_per_sec\": {:.1}, \"platter_writes\": {}, \"mean_batch\": {:.2}, \
             \"lock_wait_ms\": {:.1}, \"server_lock_waits\": {}, \"trace_events\": {}, \
             \"trace_dropped\": {}, \"phases\": {}}}{}\n",
            r.policy,
            r.tm_threads,
            r.commits,
            r.elapsed_s,
            r.commits_per_sec,
            r.platter_writes,
            r.mean_batch,
            r.lock_wait_ms,
            r.server_lock_waits,
            r.trace_events,
            r.trace_dropped,
            phases_json(&r.phases),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    // Per-policy contention summary (summed over the thread sweep):
    // `shard_lock_wait_ms` is time TranMan workers spent blocked on
    // engine-shard locks, `server_lock_waits` counts data-server lock
    // queue waits — the two layers where the lock-wait ceiling forms.
    println!("\nper-policy lock-wait summary (whole sweep):");
    json.push_str("  \"lock_wait_summary\": {");
    for (i, &policy) in policies.iter().enumerate() {
        let shard_ms: f64 = results
            .iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.lock_wait_ms)
            .sum();
        let srv_waits: u64 = results
            .iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.server_lock_waits)
            .sum();
        println!("  {policy}: shard_lock_wait={shard_ms:.1}ms server_lock_waits={srv_waits}");
        json.push_str(&format!(
            "\"{policy}\": {{\"shard_lock_wait_ms\": {shard_ms:.1}, \
             \"server_lock_waits\": {srv_waits}}}{}",
            if i + 1 == policies.len() { "" } else { ", " }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"ratio_threads\": {hi},\n"));
    json.push_str("  \"throughput_ratio_vs_1_thread\": {");
    for (i, (policy, ratio)) in ratios.iter().enumerate() {
        json.push_str(&format!(
            "\"{policy}\": {ratio:.2}{}",
            if i + 1 == ratios.len() { "" } else { ", " }
        ));
    }
    json.push_str("},\n");

    // Cluster-wide per-phase percentiles over the whole sweep (the
    // per-run snapshots merge associatively).
    let mut all_phases = PhaseSnapshot::default();
    for r in &results {
        all_phases.merge(&r.phases);
    }
    json.push_str(&format!(
        "  \"phases_overall\": {},\n",
        phases_json(&all_phases)
    ));
    println!("\nper-phase latency over the whole sweep (µs):");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "phase", "count", "p50", "p95", "p99", "max"
    );
    for (phase, h) in all_phases.non_empty() {
        println!(
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>10}",
            phase.name(),
            h.count(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.max_us()
        );
    }

    // Protocol-cost audit: the paper's force/datagram budgets, checked
    // against a clean traced run of each configuration. A violation
    // fails the bench so CI smoke runs catch budget drift.
    println!("\nprotocol-cost audit (paper budgets, Tables 1-2):");
    let audits = audit_sweep();
    let mut violated = false;
    json.push_str("  \"audit\": {");
    for (i, (name, result)) in audits.iter().enumerate() {
        match result {
            Ok(counts) => {
                println!("  {name}: ok ({counts})");
                json.push_str(&format!("\"{name}\": \"ok\""));
            }
            Err(e) => {
                println!("  {name}: VIOLATION: {e}");
                json.push_str(&format!("\"{name}\": \"violation\""));
                violated = true;
            }
        }
        if i + 1 != audits.len() {
            json.push_str(", ");
        }
    }
    json.push_str("}\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_rt_scaling.json");
    std::fs::write(&out, json).expect("write BENCH_rt_scaling.json");
    println!("wrote {}", out.display());
    if violated {
        eprintln!("protocol-cost audit failed: see violations above");
        std::process::exit(1);
    }
}
