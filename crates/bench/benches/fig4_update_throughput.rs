//! Reproduction bench: Figure 4 (update transaction throughput).

fn main() {
    let report = camelot_harness::fig45::run_fig4(camelot_bench::quick());
    println!("{report}");
}
