//! Reproduction bench: Figure 5 (read transaction throughput).

fn main() {
    let report = camelot_harness::fig45::run_fig5(camelot_bench::quick());
    println!("{report}");
}
