//! Reproduction bench: measured primitive counts per protocol
//! (validates the paper's 2-force/3-message vs 4-force/5-message
//! critical-path accounting). Run with
//! `cargo bench --bench primitive_counts`.

fn main() {
    let report = camelot_harness::counts::run(camelot_bench::quick());
    println!("{report}");
}
