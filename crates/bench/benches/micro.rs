//! Criterion micro-benchmarks of the hot paths: engine step, lock
//! manager, WAL append/force, message codec, group-commit batcher.
//!
//! These complement the reproduction benches (which report virtual-
//! time results): they measure the real CPU cost of the protocol
//! processor itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camelot_core::{CommitMode, Engine, EngineConfig, Input};
use camelot_locks::{LockManager, Mode};
use camelot_net::msg::NbInfo;
use camelot_net::{Envelope, TmMessage};
use camelot_types::wire::Wire;
use camelot_types::{FamilyId, Lsn, ObjectId, ServerId, SiteId, Tid, Time};
use camelot_wal::{BatchPolicy, GroupCommitBatcher, LogRecord, MemStore, ReqId, Wal};

fn bench_engine_local_commit(c: &mut Criterion) {
    c.bench_function("engine/local_update_commit_roundtrip", |b| {
        let mut engine = Engine::new(SiteId(1), EngineConfig::default());
        let mut req = 0u64;
        b.iter(|| {
            req += 1;
            let actions = engine.handle(Input::Begin { req }, Time::ZERO);
            let tid = match &actions[0] {
                camelot_core::Action::Began { tid, .. } => tid.clone(),
                _ => unreachable!(),
            };
            engine.handle(
                Input::Join {
                    tid: tid.clone(),
                    server: ServerId(1),
                },
                Time::ZERO,
            );
            engine.handle(
                Input::CommitTop {
                    req,
                    tid: tid.clone(),
                    mode: CommitMode::TwoPhase,
                    participants: vec![],
                },
                Time::ZERO,
            );
            let actions = engine.handle(
                Input::ServerVote {
                    tid: tid.clone(),
                    server: ServerId(1),
                    vote: camelot_core::Vote::Yes,
                },
                Time::ZERO,
            );
            // Complete the force.
            for a in actions {
                if let camelot_core::Action::Force { token, .. } = a {
                    black_box(engine.handle(Input::LogForced { token }, Time::ZERO));
                }
            }
        });
    });
}

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/acquire_release_cycle", |b| {
        let mut lm = LockManager::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let fam = FamilyId {
                origin: SiteId(1),
                seq,
            };
            let tid = Tid::top_level(fam);
            for i in 0..8u64 {
                black_box(lm.acquire(ObjectId(i), &tid, Mode::Exclusive));
            }
            black_box(lm.release_family(fam));
        });
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal/append_force", |b| {
        let mut wal = Wal::new(MemStore::new());
        let tid = Tid::top_level(FamilyId {
            origin: SiteId(1),
            seq: 1,
        });
        let rec = LogRecord::Commit {
            tid,
            subs: vec![SiteId(2), SiteId(3)],
        };
        b.iter(|| {
            black_box(wal.append_force(&rec).unwrap());
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    c.bench_function("codec/envelope_roundtrip", |b| {
        let tid = Tid::top_level(FamilyId {
            origin: SiteId(1),
            seq: 42,
        })
        .child(1);
        let env = Envelope {
            src: SiteId(1),
            dst: SiteId(2),
            seq: 9,
            primary: TmMessage::NbPrepare {
                tid: tid.clone(),
                coordinator: SiteId(1),
                info: NbInfo {
                    sites: vec![SiteId(1), SiteId(2), SiteId(3)],
                    yes_votes: vec![SiteId(2)],
                    commit_quorum: 2,
                    abort_quorum: 2,
                },
            },
            piggyback: vec![TmMessage::CommitAck {
                tid,
                from: SiteId(2),
            }],
        };
        b.iter(|| {
            let bytes = env.to_bytes();
            black_box(Envelope::from_bytes(&bytes).unwrap());
        });
    });
}

fn bench_batcher(c: &mut Criterion) {
    c.bench_function("batcher/coalesce_cycle", |b| {
        let mut batcher = GroupCommitBatcher::new(BatchPolicy::Coalesce);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let base = n * 100;
            let a1 = batcher.request(ReqId(base), Lsn(base), Time(n));
            let _ = batcher.request(ReqId(base + 1), Lsn(base + 50), Time(n));
            black_box(&a1);
            black_box(batcher.write_complete(Time(n)));
            if batcher.pending_len() > 0 {
                black_box(batcher.write_complete(Time(n)));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_engine_local_commit,
    bench_locks,
    bench_wal,
    bench_codec,
    bench_batcher
);
criterion_main!(benches);
