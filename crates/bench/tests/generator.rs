//! Tier-1 tests for the load-generator building blocks: the seeded
//! Zipfian sampler and the open-loop arrival schedule. These gate the
//! believability of every `camelot-load` curve — a skewless sampler or
//! a drifting pacer would invalidate the contention results silently.

use std::time::{Duration, Instant};

use camelot_bench::{OpenLoop, SplitMix64, Zipf};

#[test]
fn zipf_is_deterministic_for_a_seed() {
    let z = Zipf::new(512, 0.99);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        (0..1000).map(|_| z.sample(&mut rng)).collect()
    };
    assert_eq!(draw(7), draw(7));
    assert_ne!(draw(7), draw(8));
}

#[test]
fn zipf_hot_key_frequency_matches_theory() {
    let z = Zipf::new(256, 0.99);
    let mut rng = SplitMix64::new(42);
    let n = 200_000;
    let mut counts = vec![0u64; z.keys()];
    for _ in 0..n {
        counts[z.sample(&mut rng)] += 1;
    }
    // The hottest key's empirical frequency should sit within 5%
    // (relative) of its theoretical mass at this sample size.
    let empirical = counts[0] as f64 / n as f64;
    let theory = z.hottest_mass();
    assert!(
        (empirical - theory).abs() / theory < 0.05,
        "hot key frequency {empirical:.4} vs theoretical {theory:.4}"
    );
    // Skew sanity: frequency decays along rank. Compare coarse rank
    // bands (individual adjacent ranks are too noisy in the tail).
    let band = |lo: usize, hi: usize| counts[lo..hi].iter().sum::<u64>();
    assert!(band(0, 4) > band(4, 16));
    assert!(band(4, 16) > band(64, 76));
    // And the skew is real: top-10 of 256 keys draws well over the
    // uniform share (10/256 ≈ 4%).
    assert!(band(0, 10) as f64 / n as f64 > 0.30);
}

#[test]
fn zipf_theta_zero_is_roughly_uniform() {
    let z = Zipf::new(64, 0.0);
    let mut rng = SplitMix64::new(9);
    let n = 64_000;
    let mut counts = vec![0u64; z.keys()];
    for _ in 0..n {
        counts[z.sample(&mut rng)] += 1;
    }
    let expected = n as f64 / 64.0;
    for (rank, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64 - expected).abs() / expected < 0.25,
            "rank {rank}: {c} vs uniform {expected}"
        );
    }
}

#[test]
fn open_loop_offered_rate_is_met_with_noop_consumer() {
    // Drive the schedule in real time against a no-op "engine" and
    // check the achieved release rate tracks the offered rate. A
    // drifting pacer here means every bench curve mislabels its
    // x-axis.
    let rate = 2000.0;
    let total = 1000u64; // 0.5 s of arrivals
    let start = Instant::now();
    let mut ol = OpenLoop::new(start, rate, total);
    let mut released = 0u64;
    while !ol.done() {
        if let Some(due) = ol.next_due() {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due.duration_since(now).min(Duration::from_millis(1)));
                continue;
            }
        }
        released += ol.due_now(Instant::now());
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(released, total);
    let achieved = total as f64 / elapsed;
    // Within 15% of offered: sleep granularity costs a little, but
    // the burst-release catch-up keeps the long-run rate honest.
    assert!(
        (achieved - rate).abs() / rate < 0.15,
        "achieved {achieved:.0}/s vs offered {rate:.0}/s"
    );
}

#[test]
fn open_loop_latency_is_measured_from_scheduled_arrival() {
    // due_at(i) must be start + i/rate exactly, independent of when
    // (or whether) the harness got around to releasing arrival i —
    // that is what makes backlog count against the system.
    let start = Instant::now();
    let ol = OpenLoop::new(start, 100.0, 50);
    for i in [0u64, 1, 10, 49] {
        let expect = start + Duration::from_secs_f64(i as f64 / 100.0);
        let got = ol.due_at(i);
        let delta = if got > expect {
            got.duration_since(expect)
        } else {
            expect.duration_since(got)
        };
        assert!(
            delta < Duration::from_micros(50),
            "arrival {i}: off by {delta:?}"
        );
    }
}
