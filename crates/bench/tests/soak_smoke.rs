//! Smoke test for the soak harness binary: a short seeded soak
//! against a real supervised socket cluster must finish clean.
//!
//! This is the soak's own acceptance gate — kills, partitions, and
//! skews all fire in a few seconds of wall clock, the audits run, and
//! the process exits 0. A violation (conservation, ratchet, wedged
//! state, burned restart budget) exits 1 and fails this test with the
//! soak's output attached.

use std::process::Command;

#[test]
fn quick_soak_exits_clean() {
    let exe = env!("CARGO_BIN_EXE_camelot-soak");
    let tmp = std::env::temp_dir().join(format!("camelot-soak-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let out = Command::new(exe)
        .env("QUICK", "1")
        .args(["--duration-secs", "8"])
        .args(["--audit-every-secs", "4"])
        .args(["--fault-every-ms", "1200"])
        .args(["--seed", "1"])
        .arg("--log-dir")
        .arg(tmp.join("wal"))
        .arg("--trace-dir")
        .arg(tmp.join("traces"))
        .output()
        .expect("run camelot-soak");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "soak failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );
    assert!(
        stdout.contains("clean soak"),
        "unexpected output:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
