//! Pieces shared by the open-loop harness binaries (`camelot-load`,
//! `camelot-sockbench`): latency-histogram JSON rendering and the
//! multi-consumer work channel between the pacer and its worker pool.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use camelot_obs::Histogram;

/// JSON for one latency histogram.
pub fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \
         \"max_us\": {}}}",
        h.count(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        h.mean_us(),
        h.max_us()
    )
}

/// Cloneable receiving half of [`work_channel`]. The workspace's
/// crossbeam stand-in is not reachable from the bench binaries, so
/// multi-consumer dispatch wraps `std::sync::mpsc` in a mutex — fine
/// for work items that each take far longer than a lock handoff.
pub struct WorkReceiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for WorkReceiver<T> {
    fn clone(&self) -> Self {
        WorkReceiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> WorkReceiver<T> {
    /// Blocks for the next item; `Err` when the sender hung up.
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        self.inner.lock().expect("rx lock").recv()
    }
}

/// A single-producer multi-consumer queue: the pacer sends, every
/// worker-pool thread holds a clone of the receiver.
pub fn work_channel<T>() -> (mpsc::Sender<T>, WorkReceiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        tx,
        WorkReceiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn work_channel_fans_out_to_many_consumers() {
        let (tx, rx) = work_channel::<u64>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || {
                let mut got = 0u64;
                while let Ok(v) = rx.recv() {
                    got += v;
                }
                got
            }));
        }
        drop(rx);
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050, "every item consumed exactly once");
    }

    #[test]
    fn hist_json_shape() {
        let h = camelot_obs::AtomicHistogram::default();
        h.record_us(100);
        h.record_us(200);
        let j = hist_json(&h.snapshot());
        assert!(j.contains("\"count\": 2"), "{j}");
        assert!(j.contains("p99_us"), "{j}");
    }
}
