//! Compares two bench JSON reports and fails on a knee regression.
//!
//! CI usage: extract the committed baseline (`git show
//! HEAD:BENCH_socket.json`), run the bench to produce a fresh report,
//! then
//!
//! ```text
//! camelot-bench-diff --baseline baseline.json --current BENCH_socket.json
//! ```
//!
//! Exit codes: `0` pass (including a config-hash mismatch, which is a
//! *skip* — the workload changed, re-record the baseline), `1` a
//! saturation knee dropped by more than `--threshold-pct` (default
//! 15) or a baseline curve vanished, `2` usage or unreadable input.

use std::process::exit;

use camelot_bench::diff::{diff, parse_summary, DiffVerdict};

fn usage() -> ! {
    eprintln!("usage: camelot-bench-diff --baseline FILE --current FILE [--threshold-pct P]");
    exit(2);
}

fn main() {
    let mut baseline = None;
    let mut current = None;
    let mut threshold_pct = 15.0f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => baseline = Some(value(&mut i)),
            "--current" => current = Some(value(&mut i)),
            "--threshold-pct" => threshold_pct = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage()
    };

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("camelot-bench-diff: read {path}: {e}");
            exit(2);
        })
    };
    let parse = |path: &str, text: &str| {
        parse_summary(text).unwrap_or_else(|e| {
            eprintln!("camelot-bench-diff: parse {path}: {e}");
            exit(2);
        })
    };
    let base_text = read(&baseline);
    let cur_text = read(&current);
    let base = parse(&baseline, &base_text);
    let cur = parse(&current, &cur_text);

    if base.bench != cur.bench {
        eprintln!(
            "camelot-bench-diff: different benches ({} vs {}); nothing to compare",
            base.bench, cur.bench
        );
        exit(2);
    }

    match diff(&base, &cur, threshold_pct) {
        DiffVerdict::SkippedConfigMismatch {
            baseline: b,
            current: c,
        } => {
            println!(
                "camelot-bench-diff: SKIP: config_hash changed ({b} -> {c}); \
                 baseline is not comparable, re-record it"
            );
        }
        DiffVerdict::Pass(rows) => {
            for (label, b, c, d) in &rows {
                println!("camelot-bench-diff: {label}: {b:.1} -> {c:.1} commits/s ({d:+.1}%)");
            }
            println!(
                "camelot-bench-diff: PASS: {} curve(s) within {threshold_pct}% of baseline",
                rows.len()
            );
        }
        DiffVerdict::Fail { rows, failures } => {
            for (label, b, c, d) in &rows {
                println!("camelot-bench-diff: {label}: {b:.1} -> {c:.1} commits/s ({d:+.1}%)");
            }
            for f in &failures {
                eprintln!("camelot-bench-diff: FAIL: {f}");
            }
            exit(1);
        }
    }
}
