//! `camelot-load`: open-loop contention harness for the two execution
//! modes.
//!
//! The closed-loop benches (`fig4`, `rt_scaling`) self-throttle: each
//! client waits for its transaction before issuing the next, so past
//! the saturation knee the *offered* load silently drops and the
//! latency blow-up never shows. This harness drives the real-thread
//! runtime **open-loop**: transaction `i` of a run at rate λ is due at
//! `start + i/λ` no matter how the previous ones fared, keys come from
//! a seeded Zipfian distribution, and latency is measured from the
//! *scheduled* arrival — backlog in the harness counts against the
//! system, as it would for real users.
//!
//! For each execution mode ([`ExecMode::LockBased`] and
//! [`ExecMode::Queued`]) the harness sweeps a ladder of offered rates
//! and reports, per point: achieved commits/s, abort counts,
//! total-latency and commit-latency percentiles, and the
//! **commit-overhead %** — the share of a committed transaction's
//! life spent inside the commit call (the paper's §4.1 accounting,
//! applied per transaction). Results land in `BENCH_load_curves.json`
//! at the workspace root, stamped with the git SHA and a config hash.
//!
//! After the sweep, the protocol-cost auditor replays one clean traced
//! transaction per protocol *in queued mode* and checks the paper's
//! primitive budgets still hold — queueing must change where time
//! goes, never how many forces and datagrams the protocol costs. A
//! violation exits 1.
//!
//! Usage: `cargo run --release --bin camelot-load -- [--mode
//! queued|lock|both] [--rates 100,200,400] [--theta 0.99] [--keys 256]
//! [--duration-ms 3000] [--read-pct 40] [--dist-pct 20] [--nb-pct 10]
//! [--seed 7] [--out PATH]`. `QUICK=1` shrinks the ladder for CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use camelot_bench::{
    hist_json, quick, stamp_json, work_channel, OpenLoop, SplitMix64, WorkReceiver, Zipf,
};
use camelot_core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot_net::Outcome;
use camelot_obs::AtomicHistogram;
use camelot_rt::{
    audit_family, budget_for, AuditProtocol, Cluster, ExecMode, Histogram, Phase, RtConfig,
};
use camelot_types::{ObjectId, ServerId, SiteId};

const SITES: u32 = 2;
const SRV: ServerId = ServerId(1);
const TM_THREADS: usize = 4;

#[derive(Debug, Clone)]
struct Args {
    modes: Vec<ExecMode>,
    rates: Vec<f64>,
    theta: f64,
    keys: usize,
    duration_ms: u64,
    read_pct: u64,
    dist_pct: u64,
    nb_pct: u64,
    seed: u64,
    out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let q = quick();
        let mut args = Args {
            modes: vec![ExecMode::LockBased, ExecMode::Queued],
            rates: if q {
                vec![50.0, 150.0]
            } else {
                vec![100.0, 200.0, 400.0, 800.0, 1600.0]
            },
            theta: 0.99,
            keys: 256,
            duration_ms: if q { 1000 } else { 4000 },
            read_pct: 40,
            dist_pct: 20,
            nb_pct: 10,
            seed: 7,
            out: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let (flag, val) = (argv[i].as_str(), argv.get(i + 1));
            let val = || {
                val.unwrap_or_else(|| panic!("{flag} needs a value"))
                    .as_str()
            };
            match flag {
                "--mode" => {
                    args.modes = match val() {
                        "queued" => vec![ExecMode::Queued],
                        "lock" | "lock_based" => vec![ExecMode::LockBased],
                        "both" => vec![ExecMode::LockBased, ExecMode::Queued],
                        other => panic!("unknown --mode {other}"),
                    }
                }
                "--rates" => {
                    args.rates = val().split(',').map(|r| r.parse().expect("rate")).collect()
                }
                "--theta" => args.theta = val().parse().expect("theta"),
                "--keys" => args.keys = val().parse().expect("keys"),
                "--duration-ms" => args.duration_ms = val().parse().expect("duration-ms"),
                "--read-pct" => args.read_pct = val().parse().expect("read-pct"),
                "--dist-pct" => args.dist_pct = val().parse().expect("dist-pct"),
                "--nb-pct" => args.nb_pct = val().parse().expect("nb-pct"),
                "--seed" => args.seed = val().parse().expect("seed"),
                "--out" => args.out = Some(val().to_string()),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        args
    }

    /// Canonical config rendering, hashed into the stamp.
    fn config_text(&self) -> String {
        format!(
            "sites={SITES} tm_threads={TM_THREADS} theta={} keys={} duration_ms={} \
             read_pct={} dist_pct={} nb_pct={} seed={} rates={:?}",
            self.theta,
            self.keys,
            self.duration_ms,
            self.read_pct,
            self.dist_pct,
            self.nb_pct,
            self.seed,
            self.rates
        )
    }
}

/// One scheduled transaction: everything is decided by the seeded
/// generator before release, so both modes replay the same workload.
struct TxnSpec {
    idx: u64,
    due: Instant,
    home: SiteId,
    key: ObjectId,
    key2: ObjectId,
    read_only: bool,
    distributed: bool,
    mode: CommitMode,
}

/// Shared measurement sinks for one (mode, rate) point.
#[derive(Default)]
struct PointSink {
    total: AtomicHistogram,
    commit: AtomicHistogram,
    commits: AtomicU64,
    aborts: AtomicU64,
    errors: AtomicU64,
    /// Sums over *committed* transactions only, for the overhead
    /// ratio (commit time / total time).
    commit_us_sum: AtomicU64,
    total_us_sum: AtomicU64,
}

struct PointResult {
    offered_per_sec: f64,
    arrivals: u64,
    commits: u64,
    aborts: u64,
    errors: u64,
    elapsed_s: f64,
    achieved_commits_per_sec: f64,
    total_lat: Histogram,
    commit_lat: Histogram,
    commit_overhead_pct: f64,
    lock_wait_ms: f64,
    server_lock_waits: u64,
    deadlocks: u64,
    queue_ops: u64,
    queue_vote_timeouts: u64,
    queue_cascades: u64,
    queue_wait_p95_us: u64,
    /// Trace-ring drops across all sites: nonzero means the point's
    /// protocol trace is incomplete and any audit over it is unsound.
    trace_dropped: u64,
    proto_json: String,
}

fn rt_config(mode: ExecMode) -> RtConfig {
    RtConfig {
        datagram_delay: StdDuration::from_micros(100),
        platter_delay: StdDuration::from_millis(2),
        lazy_flush: StdDuration::from_millis(10),
        tm_threads: TM_THREADS,
        tm_service_time: StdDuration::from_micros(50),
        call_timeout: StdDuration::from_secs(2),
        exec_mode: mode,
        data_shards: 4,
        queued_vote_timeout: StdDuration::from_millis(500),
        ..RtConfig::default()
    }
}

/// Executes one transaction spec; records into the sink.
fn run_txn(clients: &[camelot_rt::Client], spec: &TxnSpec, sink: &PointSink) {
    let client = &clients[(spec.home.0 - 1) as usize];
    let remote = SiteId(spec.home.0 % SITES + 1);
    let tid = match client.begin() {
        Ok(t) => t,
        Err(_) => {
            sink.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let body = (|| -> Result<(), ()> {
        if spec.read_only {
            client
                .read(&tid, spec.home, SRV, spec.key)
                .map_err(|_| ())?;
            client
                .read(&tid, spec.home, SRV, spec.key2)
                .map_err(|_| ())?;
        } else {
            // Read-modify-write on a Zipfian hot key: the shape that
            // makes lock-based servers convoy (S→X upgrade under
            // contention) and queued mode pipeline.
            let cur = client
                .read(&tid, spec.home, SRV, spec.key)
                .map_err(|_| ())?;
            let mut next = cur;
            next.extend_from_slice(&spec.idx.to_le_bytes());
            next.truncate(8);
            client
                .write(&tid, spec.home, SRV, spec.key, next)
                .map_err(|_| ())?;
            if spec.distributed {
                client
                    .write(
                        &tid,
                        remote,
                        SRV,
                        spec.key2,
                        spec.idx.to_le_bytes().to_vec(),
                    )
                    .map_err(|_| ())?;
            }
        }
        Ok(())
    })();
    if body.is_err() {
        let _ = client.abort(&tid);
        sink.aborts.fetch_add(1, Ordering::Relaxed);
        sink.total.record(spec.due.elapsed());
        return;
    }
    let commit_started = Instant::now();
    match client.commit(&tid, spec.mode) {
        Ok(Outcome::Committed) => {
            let commit_us = commit_started.elapsed().as_micros() as u64;
            let total_us = spec.due.elapsed().as_micros() as u64;
            sink.commits.fetch_add(1, Ordering::Relaxed);
            sink.commit.record_us(commit_us);
            sink.total.record_us(total_us);
            sink.commit_us_sum.fetch_add(commit_us, Ordering::Relaxed);
            sink.total_us_sum.fetch_add(total_us, Ordering::Relaxed);
        }
        Ok(Outcome::Aborted) => {
            sink.aborts.fetch_add(1, Ordering::Relaxed);
            sink.total.record(spec.due.elapsed());
        }
        Err(_) => {
            let _ = client.abort(&tid);
            sink.errors.fetch_add(1, Ordering::Relaxed);
            sink.total.record(spec.due.elapsed());
        }
    }
}

/// Per-protocol commit-latency percentiles from the run's protocol-
/// keyed phase histograms (one mixed workload, broken out by the
/// Tables 1–3 protocol actually run).
fn proto_json(cluster: &Cluster) -> String {
    let snap = cluster.stats().protocol_phases();
    let mut parts = Vec::new();
    for (proto, phases) in snap.non_empty() {
        let mut merged = Histogram::default();
        merged.merge(phases.get(Phase::Commit2pc));
        merged.merge(phases.get(Phase::CommitNb));
        if merged.is_empty() {
            continue;
        }
        parts.push(format!("\"{}\": {}", proto.name(), hist_json(&merged)));
    }
    format!("{{{}}}", parts.join(", "))
}

/// One (mode, rate) point: build a cluster, pace arrivals open-loop,
/// execute on a worker pool, snapshot stats.
fn run_point(args: &Args, mode: ExecMode, rate: f64) -> PointResult {
    let cluster = Arc::new(Cluster::new(SITES, rt_config(mode)));
    let zipf = Zipf::new(args.keys, args.theta);
    let mut rng = SplitMix64::new(args.seed ^ (rate as u64));
    let total = ((args.duration_ms as f64 / 1e3) * rate).max(1.0) as u64;
    let workers = ((rate / 4.0) as usize).clamp(16, 128);
    let (tx, rx) = work_channel();
    let sink = Arc::new(PointSink::default());
    let mut handles = Vec::new();
    for _ in 0..workers {
        let cluster = cluster.clone();
        let sink = sink.clone();
        let rx: WorkReceiver<TxnSpec> = rx.clone();
        handles.push(std::thread::spawn(move || {
            let clients: Vec<_> = (1..=SITES).map(|s| cluster.client(SiteId(s))).collect();
            while let Ok(spec) = rx.recv() {
                run_txn(&clients, &spec, &sink);
            }
        }));
    }
    drop(rx);
    // The pacer: this thread. Pre-draw each transaction's shape so
    // the same (seed, rate) replays identically in both modes.
    let start = Instant::now();
    let mut ol = OpenLoop::new(start, rate, total);
    while !ol.done() {
        if let Some(due) = ol.next_due() {
            let now = Instant::now();
            if due > now {
                // ≤1 ms granularity keeps release bursts tight.
                std::thread::sleep(due.duration_since(now).min(StdDuration::from_millis(1)));
                continue;
            }
        }
        let released = ol.released();
        let fresh = ol.due_now(Instant::now());
        for j in 0..fresh {
            let idx = released + j;
            let roll = rng.next_below(100);
            let read_only = roll < args.read_pct;
            let distributed = !read_only && rng.next_below(100) < args.dist_pct;
            let mode = if rng.next_below(100) < args.nb_pct {
                CommitMode::NonBlocking
            } else {
                CommitMode::TwoPhase
            };
            let spec = TxnSpec {
                idx,
                due: ol.due_at(idx),
                home: SiteId((idx % SITES as u64) as u32 + 1),
                key: ObjectId(zipf.sample(&mut rng) as u64),
                key2: ObjectId(zipf.sample(&mut rng) as u64),
                read_only,
                distributed,
                mode,
            };
            if tx.send(spec).is_err() {
                break;
            }
        }
    }
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cluster.stats();
    let commits = sink.commits.load(Ordering::Relaxed);
    let total_sum = sink.total_us_sum.load(Ordering::Relaxed);
    let commit_sum = sink.commit_us_sum.load(Ordering::Relaxed);
    let phases = stats.phases();
    let servers = stats.total_server_stats();
    let result = PointResult {
        offered_per_sec: rate,
        arrivals: total,
        commits,
        aborts: sink.aborts.load(Ordering::Relaxed),
        errors: sink.errors.load(Ordering::Relaxed),
        elapsed_s: elapsed,
        achieved_commits_per_sec: commits as f64 / elapsed,
        total_lat: sink.total.snapshot(),
        commit_lat: sink.commit.snapshot(),
        commit_overhead_pct: if total_sum == 0 {
            0.0
        } else {
            100.0 * commit_sum as f64 / total_sum as f64
        },
        lock_wait_ms: stats.total_lock_wait().as_secs_f64() * 1e3,
        server_lock_waits: servers.lock_waits,
        deadlocks: servers.deadlocks,
        queue_ops: stats.sites.iter().map(|s| s.queue_ops).sum(),
        queue_vote_timeouts: stats.sites.iter().map(|s| s.queue_vote_timeouts).sum(),
        queue_cascades: stats.sites.iter().map(|s| s.queue_cascades).sum(),
        queue_wait_p95_us: phases.get(Phase::QueueWait).percentile(95.0),
        trace_dropped: stats.total_trace_dropped(),
        proto_json: proto_json(&cluster),
    };
    let cluster = Arc::try_unwrap(cluster).ok().expect("sole owner");
    cluster.shutdown();
    result
}

/// Protocol-cost audit in *queued* mode: one clean traced transaction
/// per protocol configuration, primitive counts checked against the
/// paper's budgets. Queueing must not change protocol cost.
fn queued_audit() -> Vec<(&'static str, Result<String, String>)> {
    let configs: [(AuditProtocol, EngineConfig, CommitMode, bool); 4] = [
        (
            AuditProtocol::TwoPhaseDelayed,
            EngineConfig::default(),
            CommitMode::TwoPhase,
            true,
        ),
        (
            AuditProtocol::TwoPhaseStandard,
            EngineConfig::for_variant(TwoPhaseVariant::Unoptimized),
            CommitMode::TwoPhase,
            true,
        ),
        (
            AuditProtocol::ReadOnly,
            EngineConfig::default(),
            CommitMode::TwoPhase,
            false,
        ),
        (
            AuditProtocol::NonBlocking,
            EngineConfig::default(),
            CommitMode::NonBlocking,
            true,
        ),
    ];
    let mut out = Vec::new();
    for (protocol, engine, mode, write) in configs {
        let cfg = RtConfig {
            datagram_delay: StdDuration::from_millis(1),
            platter_delay: StdDuration::from_millis(1),
            engine,
            exec_mode: ExecMode::Queued,
            data_shards: 4,
            trace: true,
            ..RtConfig::default()
        };
        let cluster = Cluster::new(2, cfg);
        let client = cluster.client(SiteId(1));
        let tid = client.begin().expect("audit begin");
        if write {
            client
                .write(&tid, SiteId(1), SRV, ObjectId(1), b"a".to_vec())
                .expect("audit home write");
            client
                .write(&tid, SiteId(2), SRV, ObjectId(2), b"b".to_vec())
                .expect("audit remote write");
        } else {
            client
                .read(&tid, SiteId(1), SRV, ObjectId(1))
                .expect("audit home read");
            client
                .read(&tid, SiteId(2), SRV, ObjectId(2))
                .expect("audit remote read");
        }
        let outcome = client.commit(&tid, mode).expect("audit commit");
        assert_eq!(outcome, Outcome::Committed);
        std::thread::sleep(StdDuration::from_millis(400));
        let events = cluster.drain_trace();
        let dropped = cluster.stats().total_trace_dropped();
        cluster.shutdown();
        let budget = budget_for(protocol);
        let result = if dropped > 0 {
            // An audit over an incomplete trace proves nothing: the
            // missing events could be exactly the over-budget ones.
            Err(format!(
                "{dropped} trace events dropped from the rings; audit trace incomplete"
            ))
        } else {
            audit_family(tid.family, &events, &budget).map(|c| {
                format!(
                    "{} force(s) + {} lazy + {} datagram(s)",
                    c.forces, c.lazy_appends, c.datagrams
                )
            })
        };
        out.push((protocol.name(), result));
    }
    out
}

fn point_json(p: &PointResult) -> String {
    format!(
        "    {{\"offered_per_sec\": {:.1}, \"arrivals\": {}, \"commits\": {}, \"aborts\": {}, \
         \"errors\": {}, \"elapsed_s\": {:.3}, \"achieved_commits_per_sec\": {:.1}, \
         \"commit_overhead_pct\": {:.1}, \"total_latency\": {}, \"commit_latency\": {}, \
         \"lock_wait_ms\": {:.1}, \"server_lock_waits\": {}, \"deadlocks\": {}, \
         \"queue_ops\": {}, \"queue_vote_timeouts\": {}, \"queue_cascades\": {}, \
         \"queue_wait_p95_us\": {}, \"trace_dropped\": {}, \"protocol_phases\": {}}}",
        p.offered_per_sec,
        p.arrivals,
        p.commits,
        p.aborts,
        p.errors,
        p.elapsed_s,
        p.achieved_commits_per_sec,
        p.commit_overhead_pct,
        hist_json(&p.total_lat),
        hist_json(&p.commit_lat),
        p.lock_wait_ms,
        p.server_lock_waits,
        p.deadlocks,
        p.queue_ops,
        p.queue_vote_timeouts,
        p.queue_cascades,
        p.queue_wait_p95_us,
        p.trace_dropped,
        p.proto_json,
    )
}

fn main() {
    let args = Args::parse();
    println!(
        "camelot-load: open-loop, zipf theta={} over {} keys, {} ms per point, \
         mix {}% read-only / {}% distributed updates / {}% non-blocking",
        args.theta, args.keys, args.duration_ms, args.read_pct, args.dist_pct, args.nb_pct
    );
    let mut mode_sections = Vec::new();
    let mut saturation: Vec<(ExecMode, f64)> = Vec::new();
    for &mode in &args.modes {
        println!("\n== mode: {} ==", mode.name());
        println!(
            "{:>9} {:>9} {:>8} {:>7} {:>10} {:>10} {:>10} {:>9}",
            "offered/s",
            "commits/s",
            "aborts",
            "errors",
            "p95_tot",
            "p95_cmt",
            "overhead%",
            "lockwait"
        );
        let mut points = Vec::new();
        for &rate in &args.rates {
            let p = run_point(&args, mode, rate);
            println!(
                "{:>9.0} {:>9.1} {:>8} {:>7} {:>8}us {:>8}us {:>9.1}% {:>7.1}ms",
                p.offered_per_sec,
                p.achieved_commits_per_sec,
                p.aborts,
                p.errors,
                p.total_lat.percentile(95.0),
                p.commit_lat.percentile(95.0),
                p.commit_overhead_pct,
                p.lock_wait_ms
            );
            if p.trace_dropped > 0 {
                println!(
                    "  warning: {} trace events dropped at this point (rings too small)",
                    p.trace_dropped
                );
            }
            points.push(p);
        }
        let sat = points
            .iter()
            .map(|p| p.achieved_commits_per_sec)
            .fold(0.0f64, f64::max);
        println!("saturation: {sat:.1} commits/s");
        saturation.push((mode, sat));
        let body = points
            .iter()
            .map(point_json)
            .collect::<Vec<_>>()
            .join(",\n");
        mode_sections.push(format!(
            "  {{\"mode\": \"{}\", \"saturation_commits_per_sec\": {:.1}, \"points\": [\n{}\n  ]}}",
            mode.name(),
            sat,
            body
        ));
    }

    // The headline ratio: queued vs lock-based saturation throughput.
    let sat_of = |m: ExecMode| {
        saturation
            .iter()
            .find(|(mode, _)| *mode == m)
            .map(|(_, s)| *s)
    };
    let ratio = match (sat_of(ExecMode::Queued), sat_of(ExecMode::LockBased)) {
        (Some(q), Some(l)) if l > 0.0 => {
            let r = q / l;
            println!("\nqueued/lock_based saturation ratio: {r:.2}x");
            Some(r)
        }
        _ => None,
    };

    println!("\nprotocol-cost audit on queued-mode traces:");
    let audits = queued_audit();
    let mut violated = false;
    let mut audit_parts = Vec::new();
    for (name, result) in &audits {
        match result {
            Ok(counts) => {
                println!("  {name}: ok ({counts})");
                audit_parts.push(format!("\"{name}\": \"ok\""));
            }
            Err(e) => {
                println!("  {name}: VIOLATION: {e}");
                audit_parts.push(format!("\"{name}\": \"violation\""));
                violated = true;
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"load_curves\",\n");
    json.push_str(&format!(
        "  \"stamp\": {},\n",
        stamp_json(&args.config_text())
    ));
    json.push_str(&format!(
        "  \"config\": {{\"sites\": {SITES}, \"tm_threads\": {TM_THREADS}, \"theta\": {}, \
         \"keys\": {}, \"duration_ms\": {}, \"read_pct\": {}, \"dist_pct\": {}, \
         \"nb_pct\": {}, \"seed\": {}}},\n",
        args.theta,
        args.keys,
        args.duration_ms,
        args.read_pct,
        args.dist_pct,
        args.nb_pct,
        args.seed
    ));
    json.push_str("  \"modes\": [\n");
    json.push_str(&mode_sections.join(",\n"));
    json.push_str("\n  ],\n");
    match ratio {
        Some(r) => json.push_str(&format!("  \"queued_over_lock_saturation\": {r:.2},\n")),
        None => json.push_str("  \"queued_over_lock_saturation\": null,\n"),
    }
    json.push_str(&format!(
        "  \"queued_audit\": {{{}}}\n}}\n",
        audit_parts.join(", ")
    ));

    let out = args.out.clone().unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_load_curves.json")
            .to_string_lossy()
            .into_owned()
    });
    std::fs::write(&out, json).expect("write BENCH_load_curves.json");
    println!("wrote {out}");
    if violated {
        eprintln!("protocol-cost audit failed on queued-mode traces");
        std::process::exit(1);
    }
}
