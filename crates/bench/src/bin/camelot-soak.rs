//! Soak campaign against a supervised socket cluster.
//!
//! `camelot-soak` stands up an N-site cluster of real `camelot-site`
//! processes under a [`Supervisor`], drives an open-loop transfer
//! workload from a pool of generator threads, and runs a *seeded,
//! scripted* fault schedule against it: process kills, symmetric
//! network partitions, per-site clock skew, and heals, in cycles, for
//! the whole soak. The point is not any single fault but the
//! *interleaving*: a site killed while partitioned, a partition cut
//! while a kill's recovery inquiries are in flight, skewed timers
//! racing real ones.
//!
//! Between fault cycles the harness pauses the generators, heals,
//! waits for the supervisor to restore full membership, and audits
//! the paper's invariants on live state:
//!
//! - **conservation** — committed balances sum to the funded total
//!   regardless of which transfers committed, aborted, or died with a
//!   site (atomicity makes every subset conserve);
//! - **durability ratchet** — a per-site counter committed once per
//!   audit never regresses: a lost update after a kill/recovery cycle
//!   is caught at the next audit, not at the end;
//! - **no wedged state** — every site's engine drains to idle within
//!   the quiesce window (leaked families/locks fail the audit);
//! - **membership** — every site is up (a site that burned its
//!   restart budget fails the soak with its stderr tail).
//!
//! On violation the harness dumps every site's protocol trace ring
//! and the fault script executed so far to `--trace-dir` and exits 1.
//! A clean soak exits 0. `QUICK=1` shrinks the duration for CI.
//!
//! Workers resolve control connections through the supervisor's
//! [`AddrBoard`]: ports are OS-assigned and change on every respawn,
//! so each worker caches its connections against the board's
//! generation and re-resolves when supervision bumps it.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use camelot_bench::{quick, OpenLoop, SplitMix64};
use camelot_node::ctrl::CtrlClient;
use camelot_node::procs::{sibling_site_bin, AddrBoard, Supervisor, SupervisorConfig};
use camelot_scope::{merge_skew_aware, parse_jsonl, Collector, ScopeEvent, ScrapeTarget};
use camelot_types::{ObjectId, ServerId, SiteId};

const SRV: ServerId = ServerId(1);
const INITIAL: i64 = 100;

struct Opts {
    sites: u32,
    duration: Duration,
    rate: f64,
    workers: usize,
    accounts: u64,
    transport: String,
    seed: u64,
    restart_budget: u32,
    fault_every: Duration,
    audit_every: Duration,
    log_dir: Option<PathBuf>,
    trace_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: camelot-soak [--sites N] [--duration-secs S] [--rate TPS] \
         [--workers W] [--accounts K] [--transport udp|tcp] [--seed S] \
         [--restart-budget N] [--fault-every-ms MS] [--audit-every-secs S] \
         [--log-dir DIR] [--trace-dir DIR]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let q = quick();
    let mut opts = Opts {
        sites: 3,
        duration: Duration::from_secs(if q { 10 } else { 60 }),
        rate: 25.0,
        workers: 2,
        accounts: 4,
        transport: "tcp".into(),
        seed: 1,
        restart_budget: 25,
        fault_every: Duration::from_millis(1500),
        audit_every: Duration::from_secs(if q { 5 } else { 12 }),
        log_dir: None,
        trace_dir: PathBuf::from("target/tmp/soak"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let secs =
        |s: String| -> Duration { Duration::from_secs(s.parse().unwrap_or_else(|_| usage())) };
    let millis =
        |s: String| -> Duration { Duration::from_millis(s.parse().unwrap_or_else(|_| usage())) };
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => opts.sites = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => opts.duration = secs(value(&mut i)),
            "--rate" => opts.rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => opts.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--accounts" => opts.accounts = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--transport" => opts.transport = value(&mut i),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--restart-budget" => {
                opts.restart_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-every-ms" => opts.fault_every = millis(value(&mut i)),
            "--audit-every-secs" => opts.audit_every = secs(value(&mut i)),
            "--log-dir" => opts.log_dir = Some(PathBuf::from(value(&mut i))),
            "--trace-dir" => opts.trace_dir = PathBuf::from(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if opts.sites < 2 || opts.accounts == 0 || opts.workers == 0 {
        usage();
    }
    opts
}

fn balance(raw: &[u8]) -> i64 {
    if raw.is_empty() {
        0
    } else {
        i64::from_le_bytes(raw.try_into().expect("8-byte balance"))
    }
}

// ---------------------------------------------------------------- faults

/// One scripted fault event; the whole schedule derives from the seed
/// up front, so a soak replays the same script for the same flags.
#[derive(Debug, Clone)]
enum FaultEvent {
    Kill(SiteId),
    /// Symmetric cut `{1..=m} | {m+1..=sites}`.
    Partition(u32),
    /// `per_mille` of nominal timer speed: 1500 late, 500 fast.
    Skew(SiteId, u32),
    Heal,
}

fn draw_script(opts: &Opts) -> Vec<(Duration, FaultEvent)> {
    let mut rng = SplitMix64::new(opts.seed ^ 0x50AC_50AC);
    let mut script = Vec::new();
    let mut at = opts.fault_every;
    while at < opts.duration {
        let site = SiteId(1 + rng.next_below(opts.sites as u64) as u32);
        let ev = match rng.next_below(10) {
            0..=2 => FaultEvent::Kill(site),
            3..=5 => FaultEvent::Partition(1 + rng.next_below(opts.sites as u64 - 1) as u32),
            6..=7 => FaultEvent::Skew(site, if rng.next_below(2) == 0 { 1500 } else { 500 }),
            _ => FaultEvent::Heal,
        };
        script.push((at, ev));
        at += opts.fault_every;
    }
    script
}

/// Applies one scripted event through the supervisor's control plane.
/// Partition/skew installs broadcast to every *up* site — each site
/// only rolls its own outbound faults, so both partition groups need
/// the cut installed; a site that is down simply misses it (its links
/// run clean until the next install, which the cyclic script provides).
fn apply_event(sup: &mut Supervisor, sites: u32, ev: &FaultEvent, log: &mut Vec<String>) {
    let entry = match ev {
        FaultEvent::Kill(site) => {
            let hit = sup.kill_site(*site);
            format!(
                "kill site {} ({})",
                site.0,
                if hit { "hit" } else { "already down" }
            )
        }
        FaultEvent::Partition(m) => {
            let a: Vec<SiteId> = (1..=*m).map(SiteId).collect();
            let b: Vec<SiteId> = (*m + 1..=sites).map(SiteId).collect();
            for id in 1..=sites {
                if let Some(ctrl) = sup.ctrl(SiteId(id)) {
                    let _ = ctrl.partition(&a, &b);
                }
            }
            format!("partition {{1..={m}}}|{{{}..={sites}}}", m + 1)
        }
        FaultEvent::Skew(site, pm) => {
            for id in 1..=sites {
                if let Some(ctrl) = sup.ctrl(SiteId(id)) {
                    let _ = ctrl.set_skew(*site, *pm);
                }
            }
            format!("skew site {} to {pm}\u{2030}", site.0)
        }
        FaultEvent::Heal => {
            for id in 1..=sites {
                if let Some(ctrl) = sup.ctrl(SiteId(id)) {
                    let _ = ctrl.heal();
                }
            }
            "heal".to_string()
        }
    };
    println!("camelot-soak: fault: {entry}");
    log.push(entry);
}

// ---------------------------------------------------------------- workers

#[derive(Default)]
struct Counters {
    committed: AtomicU64,
    aborted: AtomicU64,
    failed: AtomicU64,
    in_flight: AtomicU64,
}

struct WorkerShared {
    board: Arc<AddrBoard>,
    run: AtomicBool,
    paused: AtomicBool,
    counters: Counters,
}

/// Control connections cached against the address board's generation:
/// any respawn bumps it and invalidates every cached socket (cheap,
/// and correct — a respawned site has fresh ports anyway).
struct ConnCache {
    generation: u64,
    conns: HashMap<SiteId, CtrlClient>,
}

impl ConnCache {
    fn get(&mut self, board: &AddrBoard, site: SiteId) -> Option<&mut CtrlClient> {
        let generation = board.generation();
        if generation != self.generation {
            self.conns.clear();
            self.generation = generation;
        }
        if let std::collections::hash_map::Entry::Vacant(e) = self.conns.entry(site) {
            let addr = board.ctrl_addr(site)?;
            let c = CtrlClient::connect(addr).ok()?;
            e.insert(c);
        }
        self.conns.get_mut(&site)
    }

    /// Drops a connection after an error so the next use redials.
    fn evict(&mut self, site: SiteId) {
        self.conns.remove(&site);
    }
}

fn transfer(
    cache: &mut ConnCache,
    board: &AddrBoard,
    coord: SiteId,
    (src, src_acct): (SiteId, ObjectId),
    (dst, dst_acct): (SiteId, ObjectId),
    amount: i64,
) -> Result<bool, String> {
    let mut call = |site: SiteId,
                    f: &mut dyn FnMut(&mut CtrlClient) -> camelot_types::Result<()>|
     -> Result<(), String> {
        let Some(ctrl) = cache.get(board, site) else {
            return Err(format!("site {} unreachable", site.0));
        };
        f(ctrl).map_err(|e| {
            cache.evict(site);
            format!("site {}: {e}", site.0)
        })
    };
    let mut tid = None;
    call(coord, &mut |c| {
        tid = Some(c.begin()?);
        Ok(())
    })?;
    let tid = tid.expect("begin set tid");
    let body = (|| -> Result<(), String> {
        let mut from = 0;
        call(src, &mut |c| {
            from = balance(&c.read(&tid, SRV, src_acct)?);
            Ok(())
        })?;
        call(src, &mut |c| {
            c.write(&tid, SRV, src_acct, (from - amount).to_le_bytes().to_vec())?;
            Ok(())
        })?;
        let mut to = 0;
        call(dst, &mut |c| {
            to = balance(&c.read(&tid, SRV, dst_acct)?);
            Ok(())
        })?;
        call(dst, &mut |c| {
            c.write(&tid, SRV, dst_acct, (to + amount).to_le_bytes().to_vec())?;
            Ok(())
        })
    })();
    if let Err(e) = body {
        // Abort best-effort at the coordinator and surface the cause.
        let _ = call(coord, &mut |c| c.abort(&tid, vec![src, dst]));
        return Err(e);
    }
    let mut committed = false;
    call(coord, &mut |c| {
        committed = c.commit(&tid, false, vec![src, dst])?;
        Ok(())
    })?;
    Ok(committed)
}

fn worker_loop(shared: Arc<WorkerShared>, sites: u32, accounts: u64, rate: f64, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut cache = ConnCache {
        generation: u64::MAX,
        conns: HashMap::new(),
    };
    let mut pacer = OpenLoop::new(Instant::now(), rate, u64::MAX);
    while shared.run.load(Ordering::Acquire) {
        if shared.paused.load(Ordering::Acquire) {
            // Drain to idle; re-pace on resume so the pause does not
            // release a burst of "overdue" transfers.
            std::thread::sleep(Duration::from_millis(5));
            pacer = OpenLoop::new(Instant::now(), rate, u64::MAX);
            continue;
        }
        let due = pacer.due_now(Instant::now()).min(4);
        if due == 0 {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        for _ in 0..due {
            if shared.paused.load(Ordering::Acquire) || !shared.run.load(Ordering::Acquire) {
                break;
            }
            let coord = SiteId(1 + rng.next_below(sites as u64) as u32);
            let src = SiteId(1 + rng.next_below(sites as u64) as u32);
            let mut dst = SiteId(1 + rng.next_below(sites as u64) as u32);
            if dst == src {
                dst = SiteId(dst.0 % sites + 1);
            }
            let src_acct = ObjectId(rng.next_below(accounts));
            let dst_acct = ObjectId(rng.next_below(accounts));
            let amount = rng.next_below(20) as i64 + 1;
            shared.counters.in_flight.fetch_add(1, Ordering::AcqRel);
            let res = transfer(
                &mut cache,
                &shared.board,
                coord,
                (src, src_acct),
                (dst, dst_acct),
                amount,
            );
            shared.counters.in_flight.fetch_sub(1, Ordering::AcqRel);
            match res {
                Ok(true) => shared.counters.committed.fetch_add(1, Ordering::Relaxed),
                Ok(false) => shared.counters.aborted.fetch_add(1, Ordering::Relaxed),
                Err(_) => {
                    // Dead site or timed-out call: back off a little
                    // instead of hammering a site mid-restart.
                    std::thread::sleep(Duration::from_millis(20));
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed)
                }
            };
        }
    }
}

// ---------------------------------------------------------------- audits

struct AuditCtx<'a> {
    opts: &'a Opts,
    /// Expected durability-ratchet value per site (index `site-1`).
    ratchet: Vec<i64>,
    fault_log: Vec<String>,
    /// Scrapes every audit cycle; rates derive from counter deltas.
    collector: Collector,
    /// Accumulated scrape snapshots (JSONL, header first).
    scrape_series: String,
    /// Trace events drained each audit cycle, so rings never fill and
    /// a violation can dump one merged cluster timeline.
    drained: Vec<ScopeEvent>,
}

/// The ratchet object lives past the transfer accounts so the two
/// invariants never collide on a lock.
fn ratchet_obj(accounts: u64) -> ObjectId {
    ObjectId(accounts)
}

/// Pauses the world and audits invariants; returns violations.
fn audit(sup: &mut Supervisor, ctx: &mut AuditCtx<'_>) -> Vec<String> {
    let opts = ctx.opts;
    let mut violations = Vec::new();

    // Heal every fault so recovery machinery can actually run, then
    // give supervision a window to restore membership.
    for id in 1..=opts.sites {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            let _ = ctrl.heal();
        }
    }
    if !sup.wait_all_up(Duration::from_secs(30)) {
        violations.push("membership: not every site came back up within 30s".into());
        return violations;
    }
    // Heal again now that every site is up: a site that respawned
    // mid-heal may have missed a partition lift (it boots clean, but
    // its peers' installs may target it again later in the script).
    for id in 1..=opts.sites {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            let _ = ctrl.heal();
        }
    }

    // Quiesce: every engine drains to idle.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        sup.poll();
        let mut busy = Vec::new();
        for id in 1..=opts.sites {
            match sup.ctrl(SiteId(id)) {
                None => busy.push(format!("site {id} down")),
                Some(ctrl) => match ctrl.debug_state() {
                    Ok(d) if d.is_empty() => {}
                    Ok(d) => busy.push(format!("site {id}: {d}")),
                    Err(e) => busy.push(format!("site {id}: debug_state: {e}")),
                },
            }
        }
        if busy.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            violations.push(format!(
                "wedged: cluster did not quiesce within 20s [{}]",
                busy.join(" | ")
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Observability sweep: scrape every site (trace-ring drops are a
    // violation in their own right — dropped events mean unauditable
    // transactions), then drain the rings in bounded chunks so they
    // never fill between audits and a later violation can dump one
    // merged cluster timeline.
    let board = sup.board();
    let targets: Vec<ScrapeTarget> = (1..=opts.sites)
        .filter_map(|id| {
            board
                .ctrl_addr(SiteId(id))
                .map(|addr| ScrapeTarget { site: id, addr })
        })
        .collect();
    let snap = ctx.collector.scrape(&targets, Some(sup.ctrl_addr()));
    let dropped = snap.total_trace_dropped();
    ctx.scrape_series.push_str(&snap.to_json());
    ctx.scrape_series.push('\n');
    if dropped > 0 {
        violations.push(format!(
            "trace: {dropped} events dropped from trace rings (capacity too small for the audit cadence)"
        ));
    }
    for id in 1..=opts.sites {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            if let Ok(trace) = ctrl.drain_trace() {
                ctx.drained.extend(parse_jsonl(&trace));
            }
        }
    }

    // Conservation over the transfer accounts.
    let mut total = 0i64;
    let mut readable = true;
    for id in 1..=opts.sites {
        for a in 0..opts.accounts {
            match sup
                .ctrl(SiteId(id))
                .ok_or_else(|| "down".to_string())
                .and_then(|c| {
                    c.committed_value(SRV, ObjectId(a))
                        .map_err(|e| e.to_string())
                }) {
                Ok(v) => total += balance(&v),
                Err(e) => {
                    violations.push(format!("audit read: site {id} obj{a}: {e}"));
                    readable = false;
                }
            }
        }
    }
    let expected = opts.sites as i64 * opts.accounts as i64 * INITIAL;
    if readable && total != expected {
        violations.push(format!(
            "conservation: committed balances sum to {total}, funded {expected}"
        ));
    }

    // Durability ratchet: the previous audit's committed counter must
    // still be there; then advance it.
    for id in 1..=opts.sites {
        let want = ctx.ratchet[id as usize - 1];
        let Some(ctrl) = sup.ctrl(SiteId(id)) else {
            violations.push(format!("ratchet: site {id} down"));
            continue;
        };
        match ctrl.committed_value(SRV, ratchet_obj(opts.accounts)) {
            Ok(v) => {
                let got = balance(&v);
                if got != want {
                    violations.push(format!(
                        "ratchet: site {id} counter regressed to {got} (committed {want})"
                    ));
                }
            }
            Err(e) => violations.push(format!("ratchet: site {id} read: {e}")),
        }
        let bump = (|| -> camelot_types::Result<bool> {
            let tid = ctrl.begin()?;
            ctrl.write(
                &tid,
                SRV,
                ratchet_obj(opts.accounts),
                (want + 1).to_le_bytes().to_vec(),
            )?;
            ctrl.commit(&tid, false, vec![])
        })();
        match bump {
            Ok(true) => ctx.ratchet[id as usize - 1] = want + 1,
            Ok(false) => {} // aborted: counter unchanged, not a violation
            Err(e) => violations.push(format!("ratchet: site {id} bump: {e}")),
        }
    }
    violations
}

/// Dumps the merged cluster timeline (every site's drained trace,
/// skew-rebased into one frame), the scrape series, and the fault
/// script to the trace directory.
fn dump_traces(sup: &mut Supervisor, ctx: &mut AuditCtx<'_>, violations: &[String]) {
    let dir = &ctx.opts.trace_dir;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("camelot-soak: create {}: {e}", dir.display());
        return;
    }
    let mut report = String::new();
    report.push_str("violations:\n");
    for v in violations {
        report.push_str(&format!("  {v}\n"));
    }
    report.push_str("fault script executed:\n");
    for f in &ctx.fault_log {
        report.push_str(&format!("  {f}\n"));
    }
    let _ = std::fs::write(dir.join("soak-report.txt"), &report);
    // Pick up whatever the rings hold beyond the last audit's drain,
    // then merge everything into one corrected timeline.
    for id in 1..=ctx.opts.sites {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            if let Ok(trace) = ctrl.drain_trace() {
                ctx.drained.extend(parse_jsonl(&trace));
            }
        }
    }
    let merged = merge_skew_aware(std::mem::take(&mut ctx.drained));
    if let Ok(mut f) = std::fs::File::create(dir.join("cluster-timeline.jsonl")) {
        let _ = f.write_all(merged.to_jsonl().as_bytes());
    }
    let _ = std::fs::write(dir.join("scrape.jsonl"), &ctx.scrape_series);
    eprintln!(
        "camelot-soak: merged cluster timeline ({} events, {} sites) dumped to {}",
        merged.events.len(),
        merged.maps.len(),
        dir.display()
    );
}

fn bail_on_budget_exhaustion(sup: &Supervisor) {
    let failed = sup.failed_sites();
    if failed.is_empty() {
        return;
    }
    for f in &failed {
        eprintln!(
            "camelot-soak: site {} exhausted its restart budget (last exit: {})",
            f.site.0, f.status
        );
        for line in &f.stderr_tail {
            eprintln!("  | {line}");
        }
    }
    exit(1);
}

// ---------------------------------------------------------------- main

fn main() {
    let opts = parse_opts();
    let bin = sibling_site_bin().unwrap_or_else(|e| {
        eprintln!("camelot-soak: {e}");
        exit(1);
    });
    let log_dir = opts.log_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("camelot-soak-{}", std::process::id()))
    });
    std::fs::create_dir_all(&log_dir).expect("create log dir");

    let mut cfg = SupervisorConfig::new(bin, opts.sites, &opts.transport, log_dir);
    cfg.restart_budget = opts.restart_budget;
    // Bound the worst-case stall of a generator thread whose call
    // races a kill or partition.
    cfg.extra.push("--call-timeout-ms".into());
    cfg.extra.push("10000".into());
    // Rings must outlast an audit interval's worth of events: the
    // audit drains them, and any drop is itself a violation.
    cfg.extra.push("--trace-capacity".into());
    cfg.extra.push("65536".into());
    let mut sup = Supervisor::start(cfg).unwrap_or_else(|e| {
        eprintln!("camelot-soak: start cluster: {e}");
        exit(1);
    });
    println!(
        "camelot-soak: {} sites ({}), {:.0} tps across {} workers, {:?} soak, seed {}",
        opts.sites, opts.transport, opts.rate, opts.workers, opts.duration, opts.seed
    );

    // Fund the transfer accounts and seed the ratchet counters.
    for id in 1..=opts.sites {
        let ctrl = sup.ctrl(SiteId(id)).expect("funding: site up");
        let tid = ctrl.begin().expect("begin funding txn");
        for a in 0..opts.accounts {
            ctrl.write(&tid, SRV, ObjectId(a), INITIAL.to_le_bytes().to_vec())
                .expect("fund account");
        }
        ctrl.write(
            &tid,
            SRV,
            ratchet_obj(opts.accounts),
            0i64.to_le_bytes().to_vec(),
        )
        .expect("seed ratchet");
        assert!(
            ctrl.commit(&tid, false, vec![]).expect("funding commit"),
            "funding at site {id} must commit",
        );
    }

    let shared = Arc::new(WorkerShared {
        board: sup.board(),
        run: AtomicBool::new(true),
        paused: AtomicBool::new(false),
        counters: Counters::default(),
    });
    let handles: Vec<_> = (0..opts.workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let (sites, accounts) = (opts.sites, opts.accounts);
            let rate = opts.rate / opts.workers as f64;
            let seed = opts.seed.wrapping_add(w as u64).wrapping_mul(0x9E37_79B9);
            std::thread::spawn(move || worker_loop(shared, sites, accounts, rate, seed))
        })
        .collect();

    let script = draw_script(&opts);
    let scrape_config = format!(
        "soak sites={} transport={} rate={} seed={}",
        opts.sites, opts.transport, opts.rate, opts.seed
    );
    let mut ctx = AuditCtx {
        opts: &opts,
        ratchet: vec![0; opts.sites as usize],
        fault_log: Vec::new(),
        collector: Collector::new(),
        scrape_series: format!("{}\n", Collector::header_json(&scrape_config)),
        drained: Vec::new(),
    };
    let start = Instant::now();
    let mut next_event = 0usize;
    let mut next_audit = start + opts.audit_every;
    let mut audits = 0u32;
    let mut all_violations: Vec<String> = Vec::new();

    // Pauses the generators, runs one audit cycle, resumes.
    let run_audit = |sup: &mut Supervisor,
                     ctx: &mut AuditCtx<'_>,
                     shared: &WorkerShared,
                     audits: &mut u32|
     -> Vec<String> {
        shared.paused.store(true, Ordering::Release);
        let drain = Instant::now() + Duration::from_secs(30);
        while shared.counters.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < drain {
            sup.poll();
            std::thread::sleep(Duration::from_millis(10));
        }
        let v = audit(sup, ctx);
        *audits += 1;
        println!(
            "camelot-soak: audit #{audits}: {}",
            if v.is_empty() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", v.len())
            }
        );
        shared.paused.store(false, Ordering::Release);
        v
    };

    while start.elapsed() < opts.duration {
        sup.poll();
        bail_on_budget_exhaustion(&sup);
        while next_event < script.len() && start.elapsed() >= script[next_event].0 {
            let (_, ev) = &script[next_event];
            apply_event(&mut sup, opts.sites, ev, &mut ctx.fault_log);
            next_event += 1;
        }
        if Instant::now() >= next_audit {
            let v = run_audit(&mut sup, &mut ctx, &shared, &mut audits);
            if !v.is_empty() {
                all_violations = v;
                break;
            }
            next_audit = Instant::now() + opts.audit_every;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Stop the generators, then run the final audit on a quiet
    // cluster (unless a mid-run audit already failed).
    shared.run.store(false, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    if all_violations.is_empty() {
        all_violations = run_audit(&mut sup, &mut ctx, &shared, &mut audits);
    }

    let c = &shared.counters;
    println!(
        "camelot-soak: {} committed, {} aborted, {} failed over {} audits, {} fault events",
        c.committed.load(Ordering::Relaxed),
        c.aborted.load(Ordering::Relaxed),
        c.failed.load(Ordering::Relaxed),
        audits,
        ctx.fault_log.len(),
    );
    let counts = sup.restart_counts();
    println!(
        "camelot-soak: restarts {}",
        counts
            .iter()
            .map(|e| format!("site {}: {}", e.site.0, e.restarts))
            .collect::<Vec<_>>()
            .join(", ")
    );

    if !all_violations.is_empty() {
        for v in &all_violations {
            eprintln!("camelot-soak: VIOLATION: {v}");
        }
        dump_traces(&mut sup, &mut ctx, &all_violations);
        sup.shutdown();
        exit(1);
    }
    // Clean soak: keep the scrape series anyway — it is cheap and the
    // nightly job graphs it.
    if std::fs::create_dir_all(&opts.trace_dir).is_ok() {
        let _ = std::fs::write(opts.trace_dir.join("scrape.jsonl"), &ctx.scrape_series);
    }
    println!("camelot-soak: clean soak");
    sup.shutdown();
}
