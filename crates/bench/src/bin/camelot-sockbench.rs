//! `camelot-sockbench`: the same open-loop offered-rate ladder as
//! `camelot-load`, driven against three deployments of the same
//! protocol stack:
//!
//! - **inproc** — the in-process real-thread runtime (`camelot-rt`
//!   `Cluster`), where inter-site datagrams are channel handoffs;
//! - **udp** — a localhost cluster of `camelot-site` OS processes
//!   moving datagrams over kernel UDP sockets (with the transport's
//!   reliable-channel machinery);
//! - **tcp** — the same cluster over framed TCP streams.
//!
//! Every transport sees the *same* seeded workload from the same
//! generator (SplitMix64 + Zipf + OpenLoop), paced open-loop so
//! backlog counts against the system, and reports saturation
//! throughput plus p50/p95/p99 total and commit latency per offered
//! rate. The gap between inproc and the socket rows is the paper's
//! conclusion-5 quantity made concrete for this codebase: the
//! serialization + syscall + kernel-buffering tax of real transports
//! (plus, for the socket rows, the control-plane round trips the
//! multi-process deployment needs to drive operations at all —
//! `commit_latency` is the cleaner cross-deployment comparison since
//! it brackets exactly one control round trip around the distributed
//! commit).
//!
//! Socket rows also snapshot each site's `TransportStats` (sends,
//! send failures, reconnects, queue drops/depths), so a ladder that
//! saturates shows *where* it saturated.
//!
//! Results land in `BENCH_socket.json`, stamped with git SHA + config
//! hash. `QUICK=1` shrinks everything for CI smoke. The
//! `camelot-site` binary is found next to this one (override with
//! `CAMELOT_SITE_BIN`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use camelot_bench::{hist_json, quick, stamp_json, work_channel, OpenLoop, SplitMix64, Zipf};
use camelot_core::{CommitMode, EngineConfig};
use camelot_net::{Outcome, TransportStats};
use camelot_node::ctrl::CtrlClient;
use camelot_node::procs::{distribute_peers, sibling_site_bin, wait_quiesce, SiteProc, SpawnSpec};
use camelot_obs::AtomicHistogram;
use camelot_rt::{Cluster, Histogram, RtConfig};
use camelot_scope::{
    attribute, merge_skew_aware, parse_jsonl, Attribution, Collector, ScrapeTarget,
};
use camelot_types::{Duration, ObjectId, ServerId, SiteId};

const SRV: ServerId = ServerId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    Inproc,
    Udp,
    Tcp,
}

impl Transport {
    fn name(self) -> &'static str {
        match self {
            Transport::Inproc => "inproc",
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
        }
    }

    fn parse(s: &str) -> Option<Transport> {
        match s {
            "inproc" => Some(Transport::Inproc),
            "udp" => Some(Transport::Udp),
            "tcp" => Some(Transport::Tcp),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Args {
    transports: Vec<Transport>,
    sites: u32,
    rates: Vec<f64>,
    theta: f64,
    keys: usize,
    duration_ms: u64,
    read_pct: u64,
    dist_pct: u64,
    nb_pct: u64,
    seed: u64,
    out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let q = quick();
        let mut args = Args {
            transports: vec![Transport::Inproc, Transport::Udp, Transport::Tcp],
            sites: if q { 2 } else { 3 },
            rates: if q {
                vec![30.0, 60.0]
            } else {
                vec![100.0, 200.0, 400.0, 600.0, 800.0]
            },
            theta: 0.99,
            keys: 64,
            duration_ms: if q { 800 } else { 3000 },
            read_pct: 40,
            dist_pct: 20,
            nb_pct: 10,
            seed: 7,
            out: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let (flag, val) = (argv[i].as_str(), argv.get(i + 1));
            let val = || {
                val.unwrap_or_else(|| panic!("{flag} needs a value"))
                    .as_str()
            };
            match flag {
                "--transports" => {
                    args.transports = val()
                        .split(',')
                        .map(|t| Transport::parse(t).unwrap_or_else(|| panic!("transport {t}")))
                        .collect()
                }
                "--sites" => args.sites = val().parse().expect("sites"),
                "--rates" => {
                    args.rates = val().split(',').map(|r| r.parse().expect("rate")).collect()
                }
                "--theta" => args.theta = val().parse().expect("theta"),
                "--keys" => args.keys = val().parse().expect("keys"),
                "--duration-ms" => args.duration_ms = val().parse().expect("duration-ms"),
                "--read-pct" => args.read_pct = val().parse().expect("read-pct"),
                "--dist-pct" => args.dist_pct = val().parse().expect("dist-pct"),
                "--nb-pct" => args.nb_pct = val().parse().expect("nb-pct"),
                "--seed" => args.seed = val().parse().expect("seed"),
                "--out" => args.out = Some(val().to_string()),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        assert!(args.sites >= 2, "need at least 2 sites");
        args
    }

    fn config_text(&self) -> String {
        format!(
            "sites={} theta={} keys={} duration_ms={} read_pct={} dist_pct={} nb_pct={} \
             seed={} rates={:?} transports={:?}",
            self.sites,
            self.theta,
            self.keys,
            self.duration_ms,
            self.read_pct,
            self.dist_pct,
            self.nb_pct,
            self.seed,
            self.rates,
            self.transports
        )
    }
}

/// One scheduled transaction, fully decided by the seeded generator so
/// every transport replays the identical workload.
struct TxnSpec {
    idx: u64,
    due: Instant,
    home: SiteId,
    key: ObjectId,
    key2: ObjectId,
    read_only: bool,
    distributed: bool,
    nonblocking: bool,
}

#[derive(Default)]
struct PointSink {
    total: AtomicHistogram,
    commit: AtomicHistogram,
    commits: AtomicU64,
    aborts: AtomicU64,
    errors: AtomicU64,
}

struct PointResult {
    offered_per_sec: f64,
    arrivals: u64,
    commits: u64,
    aborts: u64,
    errors: u64,
    elapsed_s: f64,
    achieved_commits_per_sec: f64,
    total_lat: Histogram,
    commit_lat: Histogram,
    /// Summed per-site transport counters (socket transports only).
    transport: Option<TransportStats>,
    /// Scrape snapshots taken on a cadence during the point (socket
    /// transports only) — appended to `BENCH_socket_scrape.jsonl`.
    scrape: Option<String>,
    /// Critical-path decomposition of the point's committed families
    /// from the merged cluster trace (socket transports only).
    attribution: Option<Attribution>,
}

/// The engine timer profile `camelot-site --fast` runs, mirrored here
/// so the inproc baseline and the site processes execute the same
/// protocol configuration.
fn fast_engine() -> EngineConfig {
    EngineConfig {
        vote_timeout: Duration::from_millis(800),
        inquiry_interval: Duration::from_millis(500),
        notify_resend_interval: Duration::from_millis(400),
        nb_outcome_timeout: Duration::from_millis(700),
        takeover_window: Duration::from_millis(300),
        recruit_window: Duration::from_millis(300),
        takeover_retry: Duration::from_millis(600),
        retry_cap: Duration::from_secs(5),
        orphan_check_interval: Duration::from_secs(1),
        ..EngineConfig::default()
    }
}

/// Inproc runtime config: identical engine/WAL/server shape to the
/// site processes, but datagrams cost nothing beyond the channel
/// handoff — that zero is exactly the baseline the socket rows are
/// measured against.
fn inproc_config() -> RtConfig {
    RtConfig {
        datagram_delay: StdDuration::ZERO,
        call_timeout: StdDuration::from_secs(2),
        trace: true,
        engine: fast_engine(),
        ..RtConfig::default()
    }
}

fn worker_count(rate: f64) -> usize {
    ((rate / 4.0) as usize).clamp(8, 64)
}

/// Draws the generator stream for one point. Identical (seed, rate)
/// across transports → identical specs.
struct Gen {
    rng: SplitMix64,
    zipf: Zipf,
    sites: u32,
    read_pct: u64,
    dist_pct: u64,
    nb_pct: u64,
}

impl Gen {
    fn new(args: &Args, rate: f64) -> Gen {
        Gen {
            rng: SplitMix64::new(args.seed ^ (rate as u64)),
            zipf: Zipf::new(args.keys, args.theta),
            sites: args.sites,
            read_pct: args.read_pct,
            dist_pct: args.dist_pct,
            nb_pct: args.nb_pct,
        }
    }

    fn spec(&mut self, idx: u64, due: Instant) -> TxnSpec {
        let roll = self.rng.next_below(100);
        let read_only = roll < self.read_pct;
        let distributed = !read_only && self.rng.next_below(100) < self.dist_pct;
        let nonblocking = self.rng.next_below(100) < self.nb_pct;
        TxnSpec {
            idx,
            due,
            home: SiteId((idx % self.sites as u64) as u32 + 1),
            key: ObjectId(self.zipf.sample(&mut self.rng) as u64),
            key2: ObjectId(self.zipf.sample(&mut self.rng) as u64),
            read_only,
            distributed,
            nonblocking,
        }
    }
}

/// Paces one point's arrivals open-loop into `send`, then returns
/// (arrivals, elapsed at last release).
fn pace<F: FnMut(TxnSpec)>(args: &Args, rate: f64, mut send: F) -> u64 {
    let total = ((args.duration_ms as f64 / 1e3) * rate).max(1.0) as u64;
    let mut gen = Gen::new(args, rate);
    let start = Instant::now();
    let mut ol = OpenLoop::new(start, rate, total);
    while !ol.done() {
        if let Some(due) = ol.next_due() {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due.duration_since(now).min(StdDuration::from_millis(1)));
                continue;
            }
        }
        let released = ol.released();
        let fresh = ol.due_now(Instant::now());
        for j in 0..fresh {
            let idx = released + j;
            send(gen.spec(idx, ol.due_at(idx)));
        }
    }
    total
}

fn record_outcome(
    sink: &PointSink,
    due: Instant,
    commit_started: Instant,
    outcome: Result<bool, ()>,
) {
    match outcome {
        Ok(true) => {
            sink.commits.fetch_add(1, Ordering::Relaxed);
            sink.commit.record(commit_started.elapsed());
            sink.total.record(due.elapsed());
        }
        Ok(false) => {
            sink.aborts.fetch_add(1, Ordering::Relaxed);
            sink.total.record(due.elapsed());
        }
        Err(()) => {
            sink.errors.fetch_add(1, Ordering::Relaxed);
            sink.total.record(due.elapsed());
        }
    }
}

/// One point against the in-process runtime.
fn run_point_inproc(args: &Args, rate: f64) -> PointResult {
    let cluster = Arc::new(Cluster::new(args.sites, inproc_config()));
    let sink = Arc::new(PointSink::default());
    let (tx, rx) = work_channel::<TxnSpec>();
    let mut handles = Vec::new();
    for _ in 0..worker_count(rate) {
        let cluster = cluster.clone();
        let sink = sink.clone();
        let rx = rx.clone();
        let sites = args.sites;
        handles.push(std::thread::spawn(move || {
            let clients: Vec<_> = (1..=sites).map(|s| cluster.client(SiteId(s))).collect();
            while let Ok(spec) = rx.recv() {
                let client = &clients[(spec.home.0 - 1) as usize];
                let remote = SiteId(spec.home.0 % sites + 1);
                let Ok(tid) = client.begin() else {
                    sink.errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                let body = (|| -> Result<(), ()> {
                    if spec.read_only {
                        client
                            .read(&tid, spec.home, SRV, spec.key)
                            .map_err(|_| ())?;
                        client
                            .read(&tid, spec.home, SRV, spec.key2)
                            .map_err(|_| ())?;
                    } else {
                        let mut next = client
                            .read(&tid, spec.home, SRV, spec.key)
                            .map_err(|_| ())?;
                        next.extend_from_slice(&spec.idx.to_le_bytes());
                        next.truncate(8);
                        client
                            .write(&tid, spec.home, SRV, spec.key, next)
                            .map_err(|_| ())?;
                        if spec.distributed {
                            client
                                .write(
                                    &tid,
                                    remote,
                                    SRV,
                                    spec.key2,
                                    spec.idx.to_le_bytes().to_vec(),
                                )
                                .map_err(|_| ())?;
                        }
                    }
                    Ok(())
                })();
                if body.is_err() {
                    let _ = client.abort(&tid);
                    record_outcome(&sink, spec.due, Instant::now(), Ok(false));
                    continue;
                }
                let mode = if spec.nonblocking {
                    CommitMode::NonBlocking
                } else {
                    CommitMode::TwoPhase
                };
                let commit_started = Instant::now();
                let outcome = match client.commit(&tid, mode) {
                    Ok(Outcome::Committed) => Ok(true),
                    Ok(Outcome::Aborted) => Ok(false),
                    Err(_) => {
                        let _ = client.abort(&tid);
                        Err(())
                    }
                };
                record_outcome(&sink, spec.due, commit_started, outcome);
            }
        }));
    }
    drop(rx);
    let start = Instant::now();
    let arrivals = pace(args, rate, |spec| {
        let _ = tx.send(spec);
    });
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let result = point_result(&sink, rate, arrivals, elapsed, None);
    let cluster = Arc::try_unwrap(cluster).ok().expect("sole owner");
    cluster.shutdown();
    result
}

/// Runs one transaction over the control plane of a site cluster.
fn run_txn_sock(ctrls: &mut [CtrlClient], sites: u32, spec: &TxnSpec, sink: &PointSink) {
    let home = (spec.home.0 - 1) as usize;
    let remote_site = SiteId(spec.home.0 % sites + 1);
    let remote = (remote_site.0 - 1) as usize;
    let Ok(tid) = ctrls[home].begin() else {
        sink.errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut participants: Vec<SiteId> = vec![];
    let body = (|ctrls: &mut [CtrlClient]| -> Result<(), ()> {
        if spec.read_only {
            ctrls[home].read(&tid, SRV, spec.key).map_err(|_| ())?;
            ctrls[home].read(&tid, SRV, spec.key2).map_err(|_| ())?;
        } else {
            let mut next = ctrls[home].read(&tid, SRV, spec.key).map_err(|_| ())?;
            next.extend_from_slice(&spec.idx.to_le_bytes());
            next.truncate(8);
            ctrls[home]
                .write(&tid, SRV, spec.key, next)
                .map_err(|_| ())?;
            if spec.distributed {
                ctrls[remote]
                    .write(&tid, SRV, spec.key2, spec.idx.to_le_bytes().to_vec())
                    .map_err(|_| ())?;
                participants = vec![spec.home, remote_site];
            }
        }
        Ok(())
    })(ctrls);
    if body.is_err() {
        let _ = ctrls[home].abort(&tid, participants);
        record_outcome(sink, spec.due, Instant::now(), Ok(false));
        return;
    }
    let commit_started = Instant::now();
    let outcome = match ctrls[home].commit(&tid, spec.nonblocking, participants.clone()) {
        Ok(committed) => Ok(committed),
        Err(_) => {
            let _ = ctrls[home].abort(&tid, participants);
            Err(())
        }
    };
    record_outcome(sink, spec.due, commit_started, outcome);
}

/// One point against a freshly spawned cluster of site processes.
fn run_point_sockets(args: &Args, transport: Transport, rate: f64) -> PointResult {
    let bin = sibling_site_bin().unwrap_or_else(|e| {
        eprintln!("camelot-sockbench: {e}");
        std::process::exit(1);
    });
    let extra = vec![
        "--call-timeout-ms".to_string(),
        "2000".to_string(),
        // Big enough that a whole point's trace survives un-drained;
        // the post-point drain feeds the latency attribution.
        "--trace-capacity".to_string(),
        "262144".to_string(),
    ];
    let mut sites: Vec<SiteProc> = (1..=args.sites)
        .map(|i| {
            SiteProc::spawn(&SpawnSpec {
                bin: &bin,
                site: SiteId(i),
                transport: transport.name(),
                log_dir: None,
                fast: true,
                extra: &extra,
            })
            .unwrap_or_else(|e| {
                eprintln!("camelot-sockbench: spawn site {i}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    distribute_peers(&mut sites).expect("distribute peers");
    let ctrl_addrs: Vec<_> = sites.iter().map(|s| s.handshake.ctrl).collect();

    // Scrape the cluster on a cadence for the whole point; the series
    // lands next to BENCH_socket.json so a ladder knee can be read
    // against queue depths and phase histograms, not just end counts.
    let targets: Vec<ScrapeTarget> = sites
        .iter()
        .map(|s| ScrapeTarget {
            site: s.id.0,
            addr: s.handshake.ctrl,
        })
        .collect();
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_handle = {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut collector = Collector::new();
            let mut series = String::new();
            loop {
                let snap = collector.scrape(&targets, None);
                series.push_str(&snap.to_json());
                series.push('\n');
                if stop.load(Ordering::Acquire) {
                    return series;
                }
                std::thread::sleep(StdDuration::from_millis(250));
            }
        })
    };

    let sink = Arc::new(PointSink::default());
    let (tx, rx) = work_channel::<TxnSpec>();
    let mut handles = Vec::new();
    for _ in 0..worker_count(rate) {
        let sink = sink.clone();
        let rx = rx.clone();
        let addrs = ctrl_addrs.clone();
        let nsites = args.sites;
        handles.push(std::thread::spawn(move || {
            // Each worker holds its own control connection to every
            // site: the control plane itself must not serialize the
            // ladder.
            let mut ctrls: Vec<CtrlClient> = addrs
                .iter()
                .map(|a| CtrlClient::connect(*a).expect("ctrl connect"))
                .collect();
            while let Ok(spec) = rx.recv() {
                run_txn_sock(&mut ctrls, nsites, &spec, &sink);
            }
        }));
    }
    drop(rx);
    let start = Instant::now();
    let arrivals = pace(args, rate, |spec| {
        let _ = tx.send(spec);
    });
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Let in-flight resolutions land, then read the counters.
    wait_quiesce(&mut sites, StdDuration::from_secs(10));
    let mut agg = TransportStats::default();
    for s in sites.iter_mut() {
        if let Ok(st) = s.ctrl.transport_stats() {
            agg.sends += st.sends;
            agg.send_failures += st.send_failures;
            agg.connects += st.connects;
            agg.connect_failures += st.connect_failures;
            agg.enqueued += st.enqueued;
            agg.queue_drops += st.queue_drops;
            agg.queue_depth += st.queue_depth;
            agg.max_queue_depth = agg.max_queue_depth.max(st.max_queue_depth);
        }
    }
    // Final scrape (the stop flag forces one last sample), then drain
    // every ring and attribute the point's commit latency.
    scrape_stop.store(true, Ordering::Release);
    let scrape = scrape_handle.join().ok();
    let mut events = Vec::new();
    for s in sites.iter_mut() {
        if let Ok(trace) = s.ctrl.drain_trace() {
            events.extend(parse_jsonl(&trace));
        }
    }
    let attribution = attribute(&merge_skew_aware(events).events);
    for s in sites {
        s.shutdown();
    }
    let mut result = point_result(&sink, rate, arrivals, elapsed, Some(agg));
    result.scrape = scrape;
    result.attribution = Some(attribution);
    result
}

fn point_result(
    sink: &PointSink,
    rate: f64,
    arrivals: u64,
    elapsed: f64,
    transport: Option<TransportStats>,
) -> PointResult {
    let commits = sink.commits.load(Ordering::Relaxed);
    PointResult {
        offered_per_sec: rate,
        arrivals,
        commits,
        aborts: sink.aborts.load(Ordering::Relaxed),
        errors: sink.errors.load(Ordering::Relaxed),
        elapsed_s: elapsed,
        achieved_commits_per_sec: commits as f64 / elapsed.max(1e-9),
        total_lat: sink.total.snapshot(),
        commit_lat: sink.commit.snapshot(),
        transport,
        scrape: None,
        attribution: None,
    }
}

fn transport_json(t: &TransportStats) -> String {
    format!(
        "{{\"sends\": {}, \"send_failures\": {}, \"connects\": {}, \"connect_failures\": {}, \
         \"enqueued\": {}, \"queue_drops\": {}, \"queue_depth\": {}, \"max_queue_depth\": {}}}",
        t.sends,
        t.send_failures,
        t.connects,
        t.connect_failures,
        t.enqueued,
        t.queue_drops,
        t.queue_depth,
        t.max_queue_depth
    )
}

fn point_json(p: &PointResult) -> String {
    let transport = match &p.transport {
        Some(t) => transport_json(t),
        None => "null".to_string(),
    };
    let scope = match &p.attribution {
        Some(a) => a.to_json(),
        None => "null".to_string(),
    };
    format!(
        "    {{\"offered_per_sec\": {:.1}, \"arrivals\": {}, \"commits\": {}, \"aborts\": {}, \
         \"errors\": {}, \"elapsed_s\": {:.3}, \"achieved_commits_per_sec\": {:.1}, \
         \"total_latency\": {}, \"commit_latency\": {}, \"transport\": {}, \"scope\": {}}}",
        p.offered_per_sec,
        p.arrivals,
        p.commits,
        p.aborts,
        p.errors,
        p.elapsed_s,
        p.achieved_commits_per_sec,
        hist_json(&p.total_lat),
        hist_json(&p.commit_lat),
        transport,
        scope,
    )
}

fn main() {
    let args = Args::parse();
    println!(
        "camelot-sockbench: {} sites, zipf theta={} over {} keys, {} ms per point, \
         mix {}% read-only / {}% distributed / {}% non-blocking",
        args.sites,
        args.theta,
        args.keys,
        args.duration_ms,
        args.read_pct,
        args.dist_pct,
        args.nb_pct
    );

    let mut sections = Vec::new();
    let mut saturation: Vec<(Transport, f64, u64)> = Vec::new();
    let mut scrape_series = format!("{}\n", Collector::header_json(&args.config_text()));
    let mut scraped_points = 0usize;
    for &transport in &args.transports {
        println!("\n== transport: {} ==", transport.name());
        println!(
            "{:>9} {:>9} {:>8} {:>7} {:>10} {:>10} {:>10}",
            "offered/s", "commits/s", "aborts", "errors", "p95_tot", "p50_cmt", "p95_cmt"
        );
        let mut points = Vec::new();
        for &rate in &args.rates {
            let p = match transport {
                Transport::Inproc => run_point_inproc(&args, rate),
                Transport::Udp | Transport::Tcp => run_point_sockets(&args, transport, rate),
            };
            println!(
                "{:>9.0} {:>9.1} {:>8} {:>7} {:>8}us {:>8}us {:>8}us",
                p.offered_per_sec,
                p.achieved_commits_per_sec,
                p.aborts,
                p.errors,
                p.total_lat.percentile(95.0),
                p.commit_lat.percentile(50.0),
                p.commit_lat.percentile(95.0),
            );
            if let Some(series) = &p.scrape {
                scrape_series.push_str(&format!(
                    "{{\"point\":{{\"transport\":\"{}\",\"offered_per_sec\":{:.1}}}}}\n",
                    transport.name(),
                    rate
                ));
                scrape_series.push_str(series);
                scraped_points += 1;
            }
            points.push(p);
        }
        let sat = points
            .iter()
            .map(|p| p.achieved_commits_per_sec)
            .fold(0.0f64, f64::max);
        // Commit p95 at the lowest offered rate: the uncontended
        // transport cost, before queueing noise.
        let base_p95 = points
            .first()
            .map(|p| p.commit_lat.percentile(95.0))
            .unwrap_or(0);
        println!("saturation: {sat:.1} commits/s");
        saturation.push((transport, sat, base_p95));
        let body = points
            .iter()
            .map(point_json)
            .collect::<Vec<_>>()
            .join(",\n");
        sections.push(format!(
            "  {{\"transport\": \"{}\", \"saturation_commits_per_sec\": {:.1}, \
             \"points\": [\n{}\n  ]}}",
            transport.name(),
            sat,
            body
        ));
    }

    // The headline: socket tax relative to the in-process baseline.
    let find = |t: Transport| saturation.iter().find(|(tr, _, _)| *tr == t);
    let mut tax_parts = Vec::new();
    if let Some((_, inproc_sat, inproc_p95)) = find(Transport::Inproc) {
        for t in [Transport::Udp, Transport::Tcp] {
            if let Some((_, sat, p95)) = find(t) {
                let sat_ratio = if *sat > 0.0 { inproc_sat / sat } else { 0.0 };
                let lat_ratio = if *inproc_p95 > 0 {
                    *p95 as f64 / *inproc_p95 as f64
                } else {
                    0.0
                };
                println!(
                    "{} tax: {:.2}x saturation, {:.2}x low-rate p95 commit latency",
                    t.name(),
                    sat_ratio,
                    lat_ratio
                );
                tax_parts.push(format!(
                    "\"{}\": {{\"saturation_ratio_inproc_over_socket\": {:.2}, \
                     \"low_rate_p95_commit_ratio_socket_over_inproc\": {:.2}}}",
                    t.name(),
                    sat_ratio,
                    lat_ratio
                ));
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"socket_transports\",\n");
    json.push_str(&format!(
        "  \"stamp\": {},\n",
        stamp_json(&args.config_text())
    ));
    json.push_str(&format!(
        "  \"config\": {{\"sites\": {}, \"theta\": {}, \"keys\": {}, \"duration_ms\": {}, \
         \"read_pct\": {}, \"dist_pct\": {}, \"nb_pct\": {}, \"seed\": {}}},\n",
        args.sites,
        args.theta,
        args.keys,
        args.duration_ms,
        args.read_pct,
        args.dist_pct,
        args.nb_pct,
        args.seed
    ));
    json.push_str("  \"transports\": [\n");
    json.push_str(&sections.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"tax\": {{{}}}\n}}\n", tax_parts.join(", ")));

    let out = args.out.clone().unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_socket.json")
            .to_string_lossy()
            .into_owned()
    });
    std::fs::write(&out, json).expect("write BENCH_socket.json");
    println!("wrote {out}");

    // The scrape series rides alongside the bench JSON: one header,
    // then a point-tag line followed by that point's snapshots.
    if scraped_points > 0 {
        let scrape_out = if let Some(stripped) = out.strip_suffix(".json") {
            format!("{stripped}_scrape.jsonl")
        } else {
            format!("{out}.scrape.jsonl")
        };
        std::fs::write(&scrape_out, scrape_series).expect("write scrape series");
        println!("wrote {scrape_out} ({scraped_points} scraped points)");
    }
}
