//! Seeded Zipfian key sampling for the contention harness.
//!
//! The paper's workloads touch uniformly spread objects; the lock-wait
//! ceiling only shows under *skew*, so `camelot-load` samples keys
//! from a Zipf(θ) distribution: key of rank `r` (1-based) has weight
//! `1/r^θ`. The sampler precomputes the cumulative distribution once
//! and answers each sample with a binary search — deterministic for a
//! given `(seed, keys, θ)`, with no external crates.

/// SplitMix64: tiny, seedable, statistically fine for workload
/// generation (not cryptography).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Zipf(θ) sampler over ranks `0..keys` (rank 0 is the hottest key).
/// θ = 0 is uniform; θ around 0.99 is the YCSB-style hot-spot skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(keys: usize, theta: f64) -> Zipf {
        assert!(keys > 0, "zipf needs at least one key");
        let mut cdf = Vec::with_capacity(keys);
        let mut acc = 0.0f64;
        for r in 1..=keys {
            acc += 1.0 / (r as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// Rank for one uniform draw (0 = hottest).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First rank whose cumulative weight covers u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of the hottest key — handy for sanity checks
    /// and for reporting the theoretical hot-spot rate.
    pub fn hottest_mass(&self) -> f64 {
        self.cdf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zipf_masses_sum_to_one_and_rank_monotone() {
        let z = Zipf::new(100, 0.99);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
