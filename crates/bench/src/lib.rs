//! Shared plumbing for the benchmark targets.
//!
//! Each `benches/*.rs` target reproduces one table or figure from the
//! paper via `camelot-harness` and prints the report. `QUICK=1` in the
//! environment shrinks repetition counts (useful in CI).

/// True when the `QUICK` environment variable asks for short runs.
pub fn quick() -> bool {
    std::env::var("QUICK").map(|v| v == "1").unwrap_or(false)
}
