//! Shared plumbing for the benchmark targets.
//!
//! Each `benches/*.rs` target reproduces one table or figure from the
//! paper via `camelot-harness` and prints the report. `QUICK=1` in the
//! environment shrinks repetition counts (useful in CI).

pub mod diff;
pub mod openloop;
pub mod report;
pub mod zipf;

pub use openloop::OpenLoop;
pub use report::{hist_json, work_channel, WorkReceiver};
pub use zipf::{SplitMix64, Zipf};

// Provenance stamping moved to `camelot-scope` (scrape series and
// merged timelines carry the same stamp as bench JSON); re-exported
// here so bench targets keep their import paths.
pub use camelot_scope::{config_hash, git_sha, stamp_json};

/// True when the `QUICK` environment variable asks for short runs.
pub fn quick() -> bool {
    std::env::var("QUICK").map(|v| v == "1").unwrap_or(false)
}
