//! Knee-regression comparison between two bench JSON reports.
//!
//! The socket and load-curve benches stamp their JSON with a
//! `config_hash` (a digest of every knob that shapes the workload)
//! and report one *knee* — `saturation_commits_per_sec` — per curve,
//! labelled by its `transport`/`mode`. CI keeps the last committed
//! report as the baseline and fails the build when a knee drops by
//! more than a threshold, which turns "the data plane got slower"
//! from a graph someone might read into a red build.
//!
//! Comparing runs whose configs differ is meaningless, so a
//! `config_hash` mismatch is a *skip*, not a failure: the workload
//! changed and the baseline must be re-recorded.
//!
//! The workspace takes no JSON dependency; the parser below handles
//! exactly the subset our own reports emit (string values without
//! escapes, plain numbers) and is tested against a committed report.

/// One report's comparable surface.
#[derive(Debug, PartialEq)]
pub struct BenchSummary {
    /// `"bench"` field: which bench produced the report.
    pub bench: String,
    /// `"stamp".config_hash`: digest of the workload configuration.
    pub config_hash: String,
    /// `(curve label, saturation_commits_per_sec)` per curve, in
    /// report order.
    pub knees: Vec<(String, f64)>,
}

/// Extracts the first `"key": "value"` string field after `from`.
fn string_field(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\":");
    let at = text[from..].find(&pat)? + from + pat.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((rest[..end].to_string(), at))
}

/// Extracts the first `"key": <number>` field after `from`.
fn number_field(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\":");
    let at = text[from..].find(&pat)? + from + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, at))
}

/// Parses one bench report into its comparable summary. Reports
/// without any knee (e.g. `rt_scaling`) parse fine with empty
/// `knees`; reports without a stamp are an error — there is nothing
/// sound to compare.
pub fn parse_summary(text: &str) -> Result<BenchSummary, String> {
    let bench = string_field(text, "bench", 0)
        .map(|(v, _)| v)
        .ok_or("report has no \"bench\" field")?;
    let config_hash = string_field(text, "config_hash", 0)
        .map(|(v, _)| v)
        .ok_or("report has no stamp.config_hash")?;
    let mut knees = Vec::new();
    let mut from = 0;
    while let Some((knee, at)) = number_field(text, "saturation_commits_per_sec", from) {
        // The label key opens the same object, directly before the
        // knee: scan back to the enclosing '{' and read it.
        let open = text[..at].rfind('{').ok_or("knee outside any object")?;
        let label = ["transport", "mode", "label"]
            .iter()
            .find_map(|k| string_field(&text[open..at], k, 0).map(|(v, _)| v))
            .ok_or_else(|| format!("knee at byte {at} has no transport/mode/label"))?;
        knees.push((label, knee));
        from = at;
    }
    Ok(BenchSummary {
        bench,
        config_hash,
        knees,
    })
}

/// Result of comparing a current report against a baseline.
#[derive(Debug, PartialEq)]
pub enum DiffVerdict {
    /// Configs differ; no sound comparison exists. Not a failure.
    SkippedConfigMismatch { baseline: String, current: String },
    /// Every baseline knee is present and within the threshold.
    /// Carries `(label, baseline, current, delta_pct)` per curve.
    Pass(Vec<(String, f64, f64, f64)>),
    /// At least one knee regressed past the threshold (or vanished).
    Fail {
        rows: Vec<(String, f64, f64, f64)>,
        failures: Vec<String>,
    },
}

/// Compares `current` against `baseline`: a knee more than
/// `threshold_pct` below its baseline — or a baseline curve missing
/// from the current report — fails. New curves in `current` are
/// ignored (they have no baseline yet); improvements always pass.
pub fn diff(baseline: &BenchSummary, current: &BenchSummary, threshold_pct: f64) -> DiffVerdict {
    if baseline.config_hash != current.config_hash {
        return DiffVerdict::SkippedConfigMismatch {
            baseline: baseline.config_hash.clone(),
            current: current.config_hash.clone(),
        };
    }
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (label, base) in &baseline.knees {
        let Some((_, cur)) = current.knees.iter().find(|(l, _)| l == label) else {
            failures.push(format!(
                "curve \"{label}\" ({base:.1} commits/s at baseline) is missing from \
                 the current report"
            ));
            continue;
        };
        let delta_pct = if *base > 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        rows.push((label.clone(), *base, *cur, delta_pct));
        if delta_pct < -threshold_pct {
            failures.push(format!(
                "curve \"{label}\" knee regressed {:.1}% ({base:.1} -> {cur:.1} \
                 commits/s, threshold {threshold_pct}%)",
                -delta_pct
            ));
        }
    }
    if failures.is_empty() {
        DiffVerdict::Pass(rows)
    } else {
        DiffVerdict::Fail { rows, failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "bench": "socket_transports",
  "stamp": {"git_sha": "abc-dirty", "config_hash": "8e9d2ce99ad7d9fe"},
  "config": {"sites": 3, "theta": 0.99},
  "transports": [
  {"transport": "inproc", "saturation_commits_per_sec": 598.3, "points": [
    {"offered_per_sec": 100.0, "achieved_commits_per_sec": 100.3}
  ]},
  {"transport": "udp", "saturation_commits_per_sec": 401.0, "points": []},
  {"transport": "tcp", "saturation_commits_per_sec": 380.5, "points": []}
]}"#;

    fn summary(hash: &str, knees: &[(&str, f64)]) -> BenchSummary {
        BenchSummary {
            bench: "socket_transports".into(),
            config_hash: hash.into(),
            knees: knees.iter().map(|(l, k)| (l.to_string(), *k)).collect(),
        }
    }

    #[test]
    fn parses_labels_and_knees() {
        let s = parse_summary(REPORT).unwrap();
        assert_eq!(s.bench, "socket_transports");
        assert_eq!(s.config_hash, "8e9d2ce99ad7d9fe");
        assert_eq!(
            s.knees,
            vec![
                ("inproc".to_string(), 598.3),
                ("udp".to_string(), 401.0),
                ("tcp".to_string(), 380.5)
            ]
        );
    }

    #[test]
    fn parses_mode_labelled_curves() {
        let s = parse_summary(
            r#"{"bench": "load_curves",
                "stamp": {"git_sha": "x", "config_hash": "aa"},
                "modes": [{"mode": "lock_based", "saturation_commits_per_sec": 399.3}]}"#,
        )
        .unwrap();
        assert_eq!(s.knees, vec![("lock_based".to_string(), 399.3)]);
    }

    #[test]
    fn missing_stamp_is_an_error() {
        assert!(parse_summary(r#"{"bench": "x"}"#).is_err());
    }

    #[test]
    fn config_mismatch_skips() {
        let b = summary("aa", &[("tcp", 400.0)]);
        let c = summary("bb", &[("tcp", 100.0)]);
        assert!(matches!(
            diff(&b, &c, 15.0),
            DiffVerdict::SkippedConfigMismatch { .. }
        ));
    }

    #[test]
    fn within_threshold_passes_and_improvement_passes() {
        let b = summary("aa", &[("tcp", 400.0), ("udp", 400.0)]);
        let c = summary("aa", &[("tcp", 360.0), ("udp", 500.0)]);
        assert!(matches!(diff(&b, &c, 15.0), DiffVerdict::Pass(_)));
    }

    #[test]
    fn regression_past_threshold_fails() {
        let b = summary("aa", &[("tcp", 400.0)]);
        let c = summary("aa", &[("tcp", 300.0)]);
        let DiffVerdict::Fail { failures, .. } = diff(&b, &c, 15.0) else {
            panic!("expected failure");
        };
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("25.0%"), "{failures:?}");
    }

    #[test]
    fn vanished_curve_fails() {
        let b = summary("aa", &[("tcp", 400.0)]);
        let c = summary("aa", &[("udp", 400.0)]);
        assert!(matches!(diff(&b, &c, 15.0), DiffVerdict::Fail { .. }));
    }

    #[test]
    fn new_curve_in_current_is_ignored() {
        let b = summary("aa", &[("tcp", 400.0)]);
        let c = summary("aa", &[("tcp", 400.0), ("udp", 100.0)]);
        assert!(matches!(diff(&b, &c, 15.0), DiffVerdict::Pass(_)));
    }
}
