//! Open-loop arrival scheduling.
//!
//! A closed-loop driver (each client issues its next transaction when
//! the previous one returns) self-throttles exactly when the system
//! congests, hiding the latency blow-up past the knee. The open-loop
//! harness instead fixes an *offered* arrival rate: transaction `i`
//! is due at `start + i/λ` regardless of how the previous ones fared,
//! and latency is measured from the *scheduled* arrival — queueing
//! delay in the harness counts against the system, as it would for
//! real users.

use std::time::{Duration, Instant};

/// Fixed-rate arrival schedule: `n` arrivals at `rate_per_sec`, the
/// i-th due `i/rate` after start.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    start: Instant,
    interval: Duration,
    released: u64,
    total: u64,
}

impl OpenLoop {
    pub fn new(start: Instant, rate_per_sec: f64, total: u64) -> OpenLoop {
        assert!(rate_per_sec > 0.0);
        OpenLoop {
            start,
            interval: Duration::from_secs_f64(1.0 / rate_per_sec),
            released: 0,
            total,
        }
    }

    /// Number of arrivals whose due time has passed but which have not
    /// been released yet; advances the cursor. Call in a loop with
    /// [`OpenLoop::next_due`]-based sleeps — bursts after a stall are
    /// released together, as an open-loop generator must.
    pub fn due_now(&mut self, now: Instant) -> u64 {
        let elapsed = now.saturating_duration_since(self.start);
        // Arrival i (0-based) is due at start + i*interval, so by
        // `elapsed` exactly floor(elapsed/interval)+1 are due.
        let due = (elapsed.as_secs_f64() / self.interval.as_secs_f64()) as u64 + 1;
        let due = due.min(self.total);
        let fresh = due.saturating_sub(self.released);
        self.released = due;
        fresh
    }

    /// Scheduled arrival time of release index `i` (0-based).
    pub fn due_at(&self, i: u64) -> Instant {
        self.start + Duration::from_secs_f64(self.interval.as_secs_f64() * i as f64)
    }

    /// When the next unreleased arrival is due (`None` when done).
    pub fn next_due(&self) -> Option<Instant> {
        (self.released < self.total).then(|| self.due_at(self.released))
    }

    pub fn released(&self) -> u64 {
        self.released
    }

    pub fn done(&self) -> bool {
        self.released >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_match_elapsed_time() {
        let start = Instant::now();
        let mut ol = OpenLoop::new(start, 1000.0, 100);
        // 10 ms in: 11 arrivals due (i*1ms for i in 0..=10).
        assert_eq!(ol.due_now(start + Duration::from_millis(10)), 11);
        // No time passes: nothing new.
        assert_eq!(ol.due_now(start + Duration::from_millis(10)), 0);
        // A stall releases the backlog in one burst, capped at total.
        assert_eq!(ol.due_now(start + Duration::from_secs(5)), 89);
        assert!(ol.done());
    }
}
