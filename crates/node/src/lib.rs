//! Full Camelot sites running on the deterministic discrete-event
//! simulator.
//!
//! This crate assembles the pieces — transaction-manager engine, data
//! servers, write-ahead log with group-commit batcher, communication
//! manager — into simulated *sites*, and charges the paper's measured
//! primitive costs (Tables 1–2) along every path:
//!
//! - local in-line IPC between Camelot processes (1.5 ms per round),
//!   application↔server operation IPC (3 ms per round, + 0.5 ms
//!   locking), remote operations through CornMan + NetMsgServer
//!   (29 ms per round);
//! - inter-TranMan datagrams (10 ms one-way) with a 1.7 ms sender
//!   *cycle time* that serializes sequential sends — unless multicast
//!   is enabled, which is precisely the §4.2 variance experiment;
//! - log forces (15 ms on the latency testbed; a ~33 ms platter write
//!   on the throughput testbed, giving the "about 30 log writes per
//!   second" ceiling of §3.5) through the disk manager's group-commit
//!   batcher;
//! - OS scheduling jitter that grows with instantaneous network load
//!   (the paper's "variance rises with network load" observation).
//!
//! Two operating modes share all of this:
//!
//! - **Latency mode** (Figures 2–3, Table 3): unlimited compute,
//!   jitter on; measures per-transaction latency of minimal
//!   transactions.
//! - **Throughput mode** (Figures 4–5): a bounded TranMan thread pool
//!   that is *held across* synchronous log forces, a k-way CPU, a
//!   single-threaded logger; jitter off; measures transactions per
//!   second at saturation.

//!
//! The crate also hosts the *multi-process* deployment pieces: the
//! `camelot-site` binary (one real site — engine shards, WAL file,
//! disk manager, socket transport — as a standalone OS process), the
//! `camelot-launch` binary (an N-site localhost cluster running the
//! banking workload), and the [`ctrl`] control-plane protocol the two
//! speak.

pub mod app;
pub mod config;
pub mod ctrl;
pub mod procs;
pub mod world;

pub use app::{AppSpec, OpSpec, TxnRecord};
pub use config::{DiskConfig, NetConfig, TmConfig, WorldConfig};
pub use ctrl::{CtrlClient, CtrlReply, CtrlRequest, Handshake, PeerEntry};
pub use procs::{distribute_peers, sibling_site_bin, wait_quiesce, SiteProc, SpawnSpec};
pub use world::World;
