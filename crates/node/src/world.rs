//! The simulated world: full Camelot sites with cost charging.
//!
//! Cost model (derived from the paper's Tables 1–2; see crate docs):
//! an application↔TranMan call costs 1.5 ms per round (0.75 ms per
//! hop), an application↔server operation 3 ms per round plus 0.5 ms
//! locking, a TranMan↔server vote round 3 ms, a remote operation
//! 29 ms per round plus locking, an inter-TranMan datagram 10 ms
//! one-way with a 1.7 ms sender cycle time, and a log force one
//! platter write. These charges make the local update transaction's
//! critical path sum to exactly the paper's static 24.5 ms
//! (begin 1.5 + operation 3.5 + commit call 1.5 + vote round 3 +
//! commit force 15) and the local read's to 9.5 ms.

use std::collections::{BTreeMap, HashMap};

use camelot_core::{Action, Engine, ForceToken, Input, TimerToken};
use camelot_net::comman::{CommMan, ServiceAddr};
use camelot_net::{Outcome, TmMessage};
use camelot_server::{DataServer, Request};
use camelot_sim::{EventId, Resource, Scheduler};
use camelot_types::{Duration, Lsn, ObjectId, ServerId, SiteId, Tid, Time};
use camelot_wal::{BatcherAction, GroupCommitBatcher, MemStore, ReqId, Wal};

use crate::app::{AppSpec, AppState, OpKind, TxnRecord};
use crate::config::WorldConfig;

/// What a disk-manager batch request was for.
#[derive(Debug, Clone, Copy)]
enum DiskReq {
    /// A synchronous engine force; completion feeds `LogForced`.
    Engine(ForceToken),
    /// A background flush of lazily appended records.
    Background,
}

/// Why a thread session is still held: outstanding synchronous forces.
type SessionId = u64;

/// One Camelot site.
pub(crate) struct SiteState {
    pub engine: Engine,
    pub wal: Wal<MemStore>,
    batcher: GroupCommitBatcher,
    breqs: HashMap<ReqId, DiskReq>,
    next_breq: u64,
    /// Lazily appended records awaiting durability.
    lazy: Vec<(ForceToken, Lsn)>,
    lazy_flush_scheduled: bool,
    pub servers: BTreeMap<ServerId, DataServer>,
    pub comman: CommMan,
    timers: HashMap<TimerToken, EventId>,
    /// Earliest time the next datagram may leave (sender cycle time).
    next_send_free: Time,
    /// Bounded TranMan thread pool (throughput mode).
    threads: Option<Resource<World>>,
    /// Master-CPU kernel (throughput mode): serializes local IPC.
    kernel: Option<Resource<World>>,
    /// Forces a parked thread is waiting on.
    held: HashMap<ForceToken, SessionId>,
    sessions: HashMap<SessionId, usize>,
    next_session: u64,
}

/// Routing information for application-level calls.
#[derive(Debug, Clone, Copy)]
enum Pending {
    AppBegin { app: usize },
    AppCommit { app: usize },
    Op { app: usize },
}

/// The complete simulation model.
pub struct World {
    pub cfg: WorldConfig,
    pub(crate) sites: BTreeMap<SiteId, SiteState>,
    pub apps: Vec<AppState>,
    pending: HashMap<u64, Pending>,
    next_req: u64,
    /// Datagrams currently in flight (drives load-dependent jitter).
    inflight: usize,
    apps_done: usize,
}

type S = Scheduler<World>;

impl World {
    /// Builds the world: `cfg.sites` sites, each with one data server
    /// (`ServerId(1)`) registered with its communication manager.
    pub fn new(cfg: WorldConfig) -> World {
        let mut sites = BTreeMap::new();
        for i in 1..=cfg.sites {
            let id = SiteId(i);
            let mut comman = CommMan::new(id);
            let mut servers = BTreeMap::new();
            for k in 1..=cfg.servers_per_site.max(1) {
                let sid = ServerId(k);
                servers.insert(sid, DataServer::new(id, sid));
                comman.register(
                    format!("server{k}@{id}"),
                    ServiceAddr {
                        site: id,
                        server: sid,
                    },
                );
            }
            sites.insert(
                id,
                SiteState {
                    engine: Engine::new(id, cfg.engine.clone()),
                    wal: Wal::new(MemStore::new()),
                    batcher: GroupCommitBatcher::new(cfg.disk.policy),
                    breqs: HashMap::new(),
                    next_breq: 1,
                    lazy: Vec::new(),
                    lazy_flush_scheduled: false,
                    servers,
                    comman,
                    timers: HashMap::new(),
                    next_send_free: Time::ZERO,
                    threads: cfg.tm.threads.map(|t| Resource::new("tm-threads", t)),
                    kernel: (cfg.tm.kernel_per_hop > Duration::ZERO)
                        .then(|| Resource::new("kernel", 1)),
                    held: HashMap::new(),
                    sessions: HashMap::new(),
                    next_session: 1,
                },
            );
        }
        World {
            cfg,
            sites,
            apps: Vec::new(),
            pending: HashMap::new(),
            next_req: 1,
            inflight: 0,
            apps_done: 0,
        }
    }

    /// Adds a client application; returns its index.
    pub fn add_app(&mut self, spec: AppSpec) -> usize {
        assert!(
            self.sites.contains_key(&spec.home),
            "app home site must exist"
        );
        for op in &spec.ops {
            let st = self.sites.get(&op.site).expect("op site must exist");
            assert!(st.servers.contains_key(&op.server), "op server must exist");
        }
        self.apps.push(AppState::new(spec));
        self.apps.len() - 1
    }

    /// Schedules every app's first transaction.
    pub fn start(&mut self, s: &mut S) {
        for idx in 0..self.apps.len() {
            s.immediately(Box::new(move |w: &mut World, s: &mut S| {
                World::app_begin(w, s, idx);
            }));
        }
    }

    /// Runs until all apps finish or `deadline` passes. Returns true
    /// if all apps finished.
    pub fn run(&mut self, s: &mut S, deadline: Time) -> bool {
        loop {
            if self.apps_done >= self.apps.len() {
                return true;
            }
            if s.now() > deadline {
                return false;
            }
            if !s.step(self) {
                return self.apps_done >= self.apps.len();
            }
        }
    }

    /// Per-app transaction records after a run.
    pub fn records(&self, app: usize) -> &[TxnRecord] {
        &self.apps[app].records
    }

    /// Processes remaining events (cleanup traffic: commit notices,
    /// acks, background flushes) for up to `grace` of virtual time
    /// after the workload finished.
    pub fn settle(&mut self, s: &mut S, grace: Duration) {
        let deadline = s.now() + grace;
        s.run_until(self, deadline);
    }

    /// Immutable access to a site's engine (assertions in tests).
    pub fn engine(&self, site: SiteId) -> &Engine {
        &self.sites.get(&site).expect("site exists").engine
    }

    /// A server's committed object value.
    pub fn committed_value(&self, site: SiteId, server: ServerId, obj: ObjectId) -> Vec<u8> {
        self.sites
            .get(&site)
            .and_then(|st| st.servers.get(&server))
            .map(|srv| srv.committed_value(obj).to_vec())
            .unwrap_or_default()
    }

    /// Effective platter writes at a site.
    pub fn platter_writes(&self, site: SiteId) -> u64 {
        self.sites.get(&site).expect("site exists").batcher.writes()
    }

    // =================================================================
    // Cost helpers
    // =================================================================

    fn app_tm_hop(&self) -> Duration {
        self.cfg.costs.local_ipc / 2
    }

    fn server_hop(&self) -> Duration {
        self.cfg.costs.local_ipc_to_server / 2
    }

    fn rpc_hop(&self) -> Duration {
        self.cfg.costs.remote_rpc / 2
    }

    /// Smooth (exponential) jitter: applied to RPC hops.
    fn jitter_smooth(&mut self, s: &mut S) -> Duration {
        let mean = self.cfg.net.jitter_base
            + Duration::from_micros(
                self.cfg.net.jitter_per_inflight.as_micros() * self.inflight as u64,
            );
        if mean == Duration::ZERO {
            Duration::ZERO
        } else {
            s.rng().exp(mean)
        }
    }

    /// Datagram-send jitter: the smooth component plus the occasional
    /// heavy-tailed scheduling spike. The spike rides on *sends*, and
    /// its probability escalates across a burst of sequential sends
    /// from one site — the coordinator's repeated sends are exactly
    /// where the paper locates the variance, and a multicast (a
    /// single send, `burst_idx` 0) escapes the escalation.
    fn jitter(&mut self, s: &mut S, burst_idx: usize) -> Duration {
        let mut d = self.jitter_smooth(s);
        let p = self.cfg.net.spike_prob
            * (1.0 + self.cfg.net.spike_burst_escalation * burst_idx as f64);
        if p > 0.0 && s.rng().chance(p.min(1.0)) {
            let lo = self.cfg.net.spike_lo.as_micros();
            let hi = self.cfg.net.spike_hi.as_micros().max(lo + 1);
            d += Duration::from_micros(s.rng().uniform_u64(lo, hi));
        }
        d
    }

    /// Per-hop CPU overhead (latency mode): exponential with the
    /// configured mean.
    fn hop_overhead(w: &mut World, s: &mut S) -> Duration {
        let mean = w.cfg.tm.hop_overhead_mean;
        if mean == Duration::ZERO {
            Duration::ZERO
        } else {
            s.rng().exp(mean)
        }
    }

    /// Delivers a local IPC hop: the stated latency, serialized
    /// through the site's master-CPU kernel when that model is on.
    fn hop(
        w: &mut World,
        s: &mut S,
        site: SiteId,
        delay: Duration,
        cont: camelot_sim::Event<World>,
    ) {
        let delay = delay + World::hop_overhead(w, s);
        let k = w.cfg.tm.kernel_per_hop;
        if k == Duration::ZERO {
            s.after(delay, cont);
            return;
        }
        let t0 = s.now();
        let st = w.sites.get_mut(&site).expect("site exists");
        st.kernel.as_mut().expect("kernel on").acquire(
            s,
            Box::new(move |_w: &mut World, s: &mut S| {
                // The grant time: queueing behind the master CPU.
                let grant = s.now();
                s.after(
                    k,
                    Box::new(move |w: &mut World, s: &mut S| {
                        w.sites
                            .get_mut(&site)
                            .expect("site exists")
                            .kernel
                            .as_mut()
                            .expect("kernel on")
                            .release(s);
                        // The kernel service happens *within* the hop's
                        // latency: at light load the hop costs exactly its
                        // latency; under queueing the latency restarts at
                        // the grant.
                        let target = (t0 + delay).max(grant + delay).max(s.now());
                        s.at(target, cont);
                    }),
                );
            }),
        );
    }

    fn alloc_req(&mut self, p: Pending) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        self.pending.insert(r, p);
        r
    }

    // =================================================================
    // Application flow
    // =================================================================

    fn app_begin(w: &mut World, s: &mut S, app: usize) {
        let st = &mut w.apps[app];
        st.running = true;
        st.started = s.now();
        st.op_idx = 0;
        st.op_time = Duration::ZERO;
        st.tid = None;
        let home = st.spec.home;
        let req = w.alloc_req(Pending::AppBegin { app });
        let delay = w.app_tm_hop();
        World::hop(
            w,
            s,
            home,
            delay,
            Box::new(move |w: &mut World, s: &mut S| {
                World::tm_dispatch(w, s, home, Input::Begin { req });
            }),
        );
    }

    fn app_begin_done(w: &mut World, s: &mut S, app: usize, tid: Tid) {
        w.apps[app].tid = Some(tid);
        World::app_next_op(w, s, app);
    }

    fn app_next_op(w: &mut World, s: &mut S, app: usize) {
        let st = &w.apps[app];
        if st.op_idx >= st.spec.ops.len() {
            World::app_commit(w, s, app);
            return;
        }
        let op = st.spec.ops[st.op_idx].clone();
        let tid = st.tid.clone().expect("transaction begun");
        let home = st.spec.home;
        let req = w.alloc_req(Pending::Op { app });
        w.apps[app].op_started = s.now();
        let request = match op.kind {
            OpKind::Read => Request::Read {
                req,
                tid: tid.clone(),
                object: op.object,
            },
            OpKind::Write => Request::Write {
                req,
                tid: tid.clone(),
                object: op.object,
                value: s.now().as_micros().to_le_bytes().to_vec(),
            },
        };
        if op.site == home {
            let delay = w.server_hop();
            World::hop(
                w,
                s,
                op.site,
                delay,
                Box::new(move |w: &mut World, s: &mut S| {
                    World::server_handle(w, s, op.site, op.server, request);
                }),
            );
        } else {
            // Remote operation through CornMan: the home communication
            // manager notes the spread.
            let family = tid.family;
            w.sites
                .get_mut(&home)
                .expect("site exists")
                .comman
                .note_outgoing(family, op.site);
            w.inflight += 1;
            let delay = w.rpc_hop() + w.jitter_smooth(s);
            s.after(
                delay,
                Box::new(move |w: &mut World, s: &mut S| {
                    w.inflight -= 1;
                    World::server_handle(w, s, op.site, op.server, request);
                }),
            );
        }
    }

    fn app_op_done(w: &mut World, s: &mut S, app: usize) {
        let st = &mut w.apps[app];
        st.op_time += s.now().since(st.op_started);
        st.op_idx += 1;
        World::app_next_op(w, s, app);
    }

    fn app_commit(w: &mut World, s: &mut S, app: usize) {
        let st = &mut w.apps[app];
        st.commit_at = s.now();
        let tid = st.tid.clone().expect("transaction begun");
        let home = st.spec.home;
        let mode = st.spec.mode;
        let participants = w
            .sites
            .get(&home)
            .expect("site exists")
            .comman
            .participants(&tid.family);
        let req = w.alloc_req(Pending::AppCommit { app });
        let delay = w.app_tm_hop();
        World::hop(
            w,
            s,
            home,
            delay,
            Box::new(move |w: &mut World, s: &mut S| {
                World::tm_dispatch(
                    w,
                    s,
                    home,
                    Input::CommitTop {
                        req,
                        tid,
                        mode,
                        participants,
                    },
                );
            }),
        );
    }

    fn app_commit_done(w: &mut World, s: &mut S, app: usize, outcome: Outcome) {
        let now = s.now();
        let st = &mut w.apps[app];
        let tid = st.tid.take().expect("transaction begun");
        st.records.push(TxnRecord {
            start: st.started,
            end: now,
            outcome,
            op_time: st.op_time,
            commit_at: st.commit_at,
        });
        let home = st.spec.home;
        let think = st.spec.think;
        w.sites
            .get_mut(&home)
            .expect("site exists")
            .comman
            .forget(&tid.family);
        if w.apps[app].done() {
            w.apps[app].running = false;
            w.apps_done += 1;
            return;
        }
        s.after(
            think,
            Box::new(move |w: &mut World, s: &mut S| {
                World::app_begin(w, s, app);
            }),
        );
    }

    // =================================================================
    // Data servers
    // =================================================================

    fn server_handle(w: &mut World, s: &mut S, site: SiteId, server: ServerId, req: Request) {
        let st = w.sites.get_mut(&site).expect("site exists");
        let fx = st
            .servers
            .get_mut(&server)
            .expect("server exists")
            .handle(req);
        for rec in fx.log {
            st.wal.append(&rec).expect("append");
        }
        if let Some(tid) = fx.join {
            // Join-transaction call to the local TranMan (overlapped
            // with operation processing; Figure 1 step 4).
            World::tm_dispatch(w, s, site, Input::Join { tid, server });
        }
        for reply in fx.replies {
            World::op_reply(w, s, site, reply.req);
        }
        // Blocked operations surface later through lock releases.
    }

    /// Routes a completed operation back to its application.
    fn op_reply(w: &mut World, s: &mut S, site: SiteId, req: u64) {
        let Some(Pending::Op { app }) = w.pending.remove(&req) else {
            return;
        };
        let home = w.apps[app].spec.home;
        if site == home {
            let delay = w.server_hop() + w.cfg.costs.get_lock;
            World::hop(
                w,
                s,
                site,
                delay,
                Box::new(move |w: &mut World, s: &mut S| {
                    World::app_op_done(w, s, app);
                }),
            );
        } else {
            // Reply crosses back through both communication managers,
            // stamped with the sites used; the home CornMan merges the
            // stamp.
            let family = w.apps[app]
                .tid
                .as_ref()
                .map(|t| t.family)
                .expect("transaction active");
            let stamp = w
                .sites
                .get(&site)
                .expect("site exists")
                .comman
                .reply_stamp(&family);
            w.inflight += 1;
            let delay = w.rpc_hop() + w.cfg.costs.get_lock + w.jitter_smooth(s);
            s.after(
                delay,
                Box::new(move |w: &mut World, s: &mut S| {
                    w.inflight -= 1;
                    w.sites
                        .get_mut(&home)
                        .expect("site exists")
                        .comman
                        .merge_reply_stamp(family, &stamp);
                    World::app_op_done(w, s, app);
                }),
            );
        }
    }

    /// Applies server-directed engine actions (votes, commits, aborts).
    fn server_effects(w: &mut World, s: &mut S, site: SiteId, fx: camelot_server::Effects) {
        let st = w.sites.get_mut(&site).expect("site exists");
        for rec in fx.log {
            st.wal.append(&rec).expect("append");
        }
        for reply in fx.replies {
            World::op_reply(w, s, site, reply.req);
        }
    }

    // =================================================================
    // Transaction manager
    // =================================================================

    /// Entry point for every TranMan input: applies the thread-pool
    /// model in throughput mode, then processes.
    pub(crate) fn tm_dispatch(w: &mut World, s: &mut S, site: SiteId, input: Input) {
        let bounded = w.cfg.tm.threads.is_some();
        if !bounded {
            World::tm_process(w, s, site, input);
            return;
        }
        // A force completion whose thread is parked continues on that
        // thread without re-acquiring.
        if let Input::LogForced { token } = &input {
            let token = *token;
            let held = w
                .sites
                .get(&site)
                .expect("site exists")
                .held
                .contains_key(&token);
            if held {
                let sess = w
                    .sites
                    .get_mut(&site)
                    .expect("site exists")
                    .held
                    .remove(&token)
                    .expect("held checked");
                let new_forces = World::tm_process(w, s, site, input);
                let st = w.sites.get_mut(&site).expect("site exists");
                let remaining = st.sessions.get_mut(&sess).expect("session live");
                *remaining -= 1;
                *remaining += new_forces.len();
                for t in new_forces {
                    st.held.insert(t, sess);
                }
                if *remaining == 0 {
                    st.sessions.remove(&sess);
                    st.threads.as_mut().expect("bounded").release(s);
                }
                return;
            }
        }
        let cpu = w.cfg.tm.cpu_per_msg;
        let st = w.sites.get_mut(&site).expect("site exists");
        st.threads.as_mut().expect("bounded").acquire(
            s,
            Box::new(move |_w: &mut World, s: &mut S| {
                s.after(
                    cpu,
                    Box::new(move |w: &mut World, s: &mut S| {
                        let forces = World::tm_process(w, s, site, input);
                        let st = w.sites.get_mut(&site).expect("site exists");
                        if forces.is_empty() {
                            st.threads.as_mut().expect("bounded").release(s);
                        } else {
                            // Hold the thread across the synchronous
                            // force(s) — the §3.4 blocking behaviour that
                            // makes a single-threaded TranMan saturate.
                            let sess = st.next_session;
                            st.next_session += 1;
                            st.sessions.insert(sess, forces.len());
                            for t in forces {
                                st.held.insert(t, sess);
                            }
                        }
                    }),
                );
            }),
        );
    }

    /// Runs the engine on one input and applies the resulting actions.
    /// Returns the synchronous force tokens issued.
    fn tm_process(w: &mut World, s: &mut S, site: SiteId, input: Input) -> Vec<ForceToken> {
        let now = s.now();
        let actions = w
            .sites
            .get_mut(&site)
            .expect("site exists")
            .engine
            .handle(input, now);
        let mut forces = Vec::new();
        for a in actions {
            World::apply_action(w, s, site, a, &mut forces);
        }
        forces
    }

    fn apply_action(
        w: &mut World,
        s: &mut S,
        site: SiteId,
        action: Action,
        forces: &mut Vec<ForceToken>,
    ) {
        match action {
            Action::Began { req, tid } => {
                if let Some(Pending::AppBegin { app }) = w.pending.remove(&req) {
                    let delay = w.app_tm_hop();
                    World::hop(
                        w,
                        s,
                        site,
                        delay,
                        Box::new(move |w: &mut World, s: &mut S| {
                            World::app_begin_done(w, s, app, tid);
                        }),
                    );
                }
            }
            Action::Resolved { req, outcome, .. } => {
                if let Some(Pending::AppCommit { app }) = w.pending.remove(&req) {
                    let delay = w.app_tm_hop();
                    World::hop(
                        w,
                        s,
                        site,
                        delay,
                        Box::new(move |w: &mut World, s: &mut S| {
                            World::app_commit_done(w, s, app, outcome);
                        }),
                    );
                }
            }
            Action::Rejected { req, tid, detail } => {
                panic!("engine rejected req {req} for {tid}: {detail}");
            }
            Action::AskVote { tid, servers } => {
                let delay = w.server_hop();
                for server in servers {
                    let tid = tid.clone();
                    World::hop(
                        w,
                        s,
                        site,
                        delay,
                        Box::new(move |w: &mut World, s: &mut S| {
                            let st = w.sites.get_mut(&site).expect("site exists");
                            let vote = st
                                .servers
                                .get_mut(&server)
                                .expect("server exists")
                                .vote(tid.family);
                            let delay = w.server_hop();
                            World::hop(
                                w,
                                s,
                                site,
                                delay,
                                Box::new(move |w: &mut World, s: &mut S| {
                                    World::tm_dispatch(
                                        w,
                                        s,
                                        site,
                                        Input::ServerVote { tid, server, vote },
                                    );
                                }),
                            );
                        }),
                    );
                }
            }
            Action::ServerCommit { tid, servers } => {
                let delay = w.cfg.costs.drop_lock;
                s.after(
                    delay,
                    Box::new(move |w: &mut World, s: &mut S| {
                        for server in servers {
                            let fx = w
                                .sites
                                .get_mut(&site)
                                .expect("site exists")
                                .servers
                                .get_mut(&server)
                                .expect("server exists")
                                .commit_family(tid.family);
                            World::server_effects(w, s, site, fx);
                        }
                    }),
                );
            }
            Action::ServerAbort { tid, servers } => {
                let delay = w.cfg.costs.drop_lock;
                s.after(
                    delay,
                    Box::new(move |w: &mut World, s: &mut S| {
                        for server in servers {
                            let fx = w
                                .sites
                                .get_mut(&site)
                                .expect("site exists")
                                .servers
                                .get_mut(&server)
                                .expect("server exists")
                                .abort_family(tid.family);
                            World::server_effects(w, s, site, fx);
                        }
                    }),
                );
            }
            Action::ServerSubCommit { tid, servers } => {
                for server in servers {
                    let fx = w
                        .sites
                        .get_mut(&site)
                        .expect("site exists")
                        .servers
                        .get_mut(&server)
                        .expect("server exists")
                        .sub_commit(&tid);
                    World::server_effects(w, s, site, fx);
                }
            }
            Action::ServerSubAbort { tid, servers } => {
                for server in servers {
                    let fx = w
                        .sites
                        .get_mut(&site)
                        .expect("site exists")
                        .servers
                        .get_mut(&server)
                        .expect("server exists")
                        .sub_abort(&tid);
                    World::server_effects(w, s, site, fx);
                }
            }
            Action::Send { to, msg, piggyback } => {
                World::send_datagrams(w, s, site, vec![to], msg, piggyback, false);
            }
            Action::Broadcast { to, msg } => {
                let multicast = w.cfg.net.multicast;
                World::send_datagrams(w, s, site, to, msg, vec![], multicast);
            }
            Action::RelayAbort { tid } => {
                let st = w.sites.get_mut(&site).expect("site exists");
                let targets = st.comman.participants(&tid.family);
                st.comman.forget(&tid.family);
                if !targets.is_empty() {
                    World::send_datagrams(
                        w,
                        s,
                        site,
                        targets,
                        TmMessage::Abort { tid },
                        vec![],
                        false,
                    );
                }
            }
            Action::Append { rec } => {
                w.sites
                    .get_mut(&site)
                    .expect("site exists")
                    .wal
                    .append(&rec)
                    .expect("append");
            }
            Action::Force { rec, token } => {
                forces.push(token);
                let st = w.sites.get_mut(&site).expect("site exists");
                st.wal.append(&rec).expect("append");
                let end = st.wal.end_lsn();
                let breq = ReqId(st.next_breq);
                st.next_breq += 1;
                st.breqs.insert(breq, DiskReq::Engine(token));
                let actions = st.batcher.request(breq, end, s.now());
                World::apply_batch_actions(w, s, site, actions);
            }
            Action::AppendNotify { rec, token } => {
                let st = w.sites.get_mut(&site).expect("site exists");
                st.wal.append(&rec).expect("append");
                let end = st.wal.end_lsn();
                st.lazy.push((token, end));
                World::ensure_lazy_flush(w, s, site);
            }
            Action::SetTimer { token, after } => {
                let ev = s.after(
                    after,
                    Box::new(move |w: &mut World, s: &mut S| {
                        w.sites
                            .get_mut(&site)
                            .expect("site exists")
                            .timers
                            .remove(&token);
                        World::tm_dispatch(w, s, site, Input::TimerFired { token });
                    }),
                );
                w.sites
                    .get_mut(&site)
                    .expect("site exists")
                    .timers
                    .insert(token, ev);
            }
            Action::CancelTimer { token } => {
                if let Some(ev) = w
                    .sites
                    .get_mut(&site)
                    .expect("site exists")
                    .timers
                    .remove(&token)
                {
                    s.cancel(ev);
                }
            }
        }
    }

    // =================================================================
    // Network
    // =================================================================

    /// Sends `msg` (+`piggyback`) to each destination. With multicast
    /// one send slot covers all destinations; otherwise sends are
    /// serialized by the 1.7 ms cycle time — the cause of the
    /// coordinator-side variance the §4.2 multicast experiment
    /// removes.
    fn send_datagrams(
        w: &mut World,
        s: &mut S,
        from: SiteId,
        to: Vec<SiteId>,
        msg: TmMessage,
        piggyback: Vec<TmMessage>,
        multicast: bool,
    ) {
        let cycle = w.cfg.costs.datagram_cycle;
        let latency = w.cfg.costs.datagram;
        let mut slot = {
            let st = w.sites.get_mut(&from).expect("site exists");
            let slot = st.next_send_free.max(s.now());
            st.next_send_free = slot + cycle;
            slot
        };
        // Sender-side scheduling jitter is drawn per *send*: a
        // multicast is one send, so all destinations share one draw —
        // which is exactly why multicast cuts the variance the
        // coordinator's repeated sends otherwise create (§4.2).
        let mut send_jitter = w.jitter(s, 0);
        for (i, dst) in to.iter().copied().enumerate() {
            if i > 0 && !multicast {
                let st = w.sites.get_mut(&from).expect("site exists");
                slot = st.next_send_free.max(s.now());
                st.next_send_free = slot + cycle;
                send_jitter = w.jitter(s, i);
            }
            let mut msgs = vec![msg.clone()];
            msgs.extend(piggyback.iter().cloned());
            w.inflight += 1;
            let arrival = slot + latency + send_jitter;
            debug_assert!(arrival >= s.now());
            s.at(
                arrival.max(s.now()),
                Box::new(move |w: &mut World, s: &mut S| {
                    w.inflight -= 1;
                    for m in msgs {
                        World::tm_dispatch(w, s, dst, Input::Datagram { from, msg: m });
                    }
                }),
            );
        }
    }

    // =================================================================
    // Disk manager (group commit)
    // =================================================================

    fn apply_batch_actions(w: &mut World, s: &mut S, site: SiteId, actions: Vec<BatcherAction>) {
        for a in actions {
            match a {
                BatcherAction::StartWrite { upto } => {
                    let records = {
                        let st = w.sites.get_mut(&site).expect("site exists");
                        st.batcher.pending_covered(upto).max(1) as u64
                    };
                    let dur = w.cfg.disk.platter
                        + w.cfg.disk.cpu_per_write
                        + w.cfg.disk.cpu_per_record * records;
                    s.after(
                        dur,
                        Box::new(move |w: &mut World, s: &mut S| {
                            let st = w.sites.get_mut(&site).expect("site exists");
                            st.wal.force().expect("force");
                            let acts = st.batcher.write_complete(s.now());
                            World::apply_batch_actions(w, s, site, acts);
                            World::complete_lazy(w, s, site);
                        }),
                    );
                }
                BatcherAction::SetTimer { at, epoch } => {
                    s.at(
                        at.max(s.now()),
                        Box::new(move |w: &mut World, s: &mut S| {
                            let st = w.sites.get_mut(&site).expect("site exists");
                            let acts = st.batcher.timer_fired(epoch, s.now());
                            World::apply_batch_actions(w, s, site, acts);
                        }),
                    );
                }
                BatcherAction::Satisfied { reqs, .. } => {
                    for r in reqs {
                        let kind = w
                            .sites
                            .get_mut(&site)
                            .expect("site exists")
                            .breqs
                            .remove(&r);
                        match kind {
                            Some(DiskReq::Engine(token)) => {
                                World::tm_dispatch(w, s, site, Input::LogForced { token });
                            }
                            Some(DiskReq::Background) | None => {}
                        }
                    }
                }
            }
        }
    }

    /// Completes lazily appended records now covered by the durable
    /// watermark.
    fn complete_lazy(w: &mut World, s: &mut S, site: SiteId) {
        let st = w.sites.get_mut(&site).expect("site exists");
        let durable = st.wal.durable_lsn();
        let mut done = Vec::new();
        st.lazy.retain(|(token, lsn)| {
            if *lsn <= durable {
                done.push(*token);
                false
            } else {
                true
            }
        });
        for token in done {
            World::tm_dispatch(w, s, site, Input::LogDurable { token });
        }
    }

    /// Arms the background flush for lazy records (the platter write
    /// that eventually carries delayed commit records when no forced
    /// write does it sooner).
    fn ensure_lazy_flush(w: &mut World, s: &mut S, site: SiteId) {
        let st = w.sites.get_mut(&site).expect("site exists");
        if st.lazy_flush_scheduled || st.lazy.is_empty() {
            return;
        }
        st.lazy_flush_scheduled = true;
        let period = w.cfg.disk.lazy_flush;
        s.after(
            period,
            Box::new(move |w: &mut World, s: &mut S| {
                let st = w.sites.get_mut(&site).expect("site exists");
                st.lazy_flush_scheduled = false;
                if st.lazy.is_empty() {
                    return;
                }
                let upto = st.lazy.iter().map(|(_, l)| *l).max().expect("non-empty");
                let breq = ReqId(st.next_breq);
                st.next_breq += 1;
                st.breqs.insert(breq, DiskReq::Background);
                let acts = st.batcher.request(breq, upto, s.now());
                World::apply_batch_actions(w, s, site, acts);
                World::ensure_lazy_flush(w, s, site);
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppSpec;
    use camelot_core::{CommitMode, EngineConfig};

    const S1: SiteId = SiteId(1);
    const S2: SiteId = SiteId(2);

    fn no_jitter(mut cfg: WorldConfig) -> WorldConfig {
        cfg.net = crate::config::NetConfig::deterministic();
        cfg
    }

    fn run_one(cfg: WorldConfig, spec: AppSpec) -> (World, TxnRecord) {
        let seed = cfg.seed;
        let mut w = World::new(cfg);
        let app = w.add_app(spec);
        let mut s = Scheduler::new(seed);
        w.start(&mut s);
        assert!(w.run(&mut s, Time(60_000_000)), "run finished");
        w.settle(&mut s, Duration::from_secs(10));
        let r = w.records(app)[0].clone();
        (w, r)
    }

    #[test]
    fn local_update_latency_matches_static_analysis_exactly() {
        // begin 1.5 + op 3.5 + commit call 1.5 + vote round 3 +
        // commit force 15 = 24.5 ms (paper Table 3: 24.5 of 31).
        let cfg = no_jitter(WorldConfig::latency(1, EngineConfig::default(), 1));
        let spec = AppSpec::minimal(S1, &[], true, CommitMode::TwoPhase, 1);
        let (w, r) = run_one(cfg, spec);
        assert_eq!(r.latency(), Duration::from_micros(24_500));
        assert_eq!(r.outcome, Outcome::Committed);
        // And the value actually committed at the server.
        assert!(!w.committed_value(S1, ServerId(1), ObjectId(1)).is_empty());
    }

    #[test]
    fn local_read_latency_matches_static_analysis_exactly() {
        // Same minus the 15 ms force: 9.5 ms (paper: 9.5 of 13).
        let cfg = no_jitter(WorldConfig::latency(1, EngineConfig::default(), 1));
        let spec = AppSpec::minimal(S1, &[], false, CommitMode::TwoPhase, 1);
        let (w, r) = run_one(cfg, spec);
        assert_eq!(r.latency(), Duration::from_micros(9_500));
        assert_eq!(w.platter_writes(S1), 0, "read-only commit hits no disk");
    }

    #[test]
    fn one_subordinate_update_latency_in_paper_band() {
        // Paper: static 99.5, measured 110 (sd 17). Without jitter the
        // simulation is deterministic and must land between the
        // completion-path lower bound and the measured mean.
        let cfg = no_jitter(WorldConfig::latency(2, EngineConfig::default(), 1));
        let spec = AppSpec::minimal(S1, &[S2], true, CommitMode::TwoPhase, 1);
        let (w, r) = run_one(cfg, spec);
        let ms = r.latency().as_millis_f64();
        assert!((85.0..112.0).contains(&ms), "latency {ms}ms");
        // Both sites committed the value (cleanup settled in run_one).
        assert!(!w.committed_value(S2, ServerId(1), ObjectId(2)).is_empty());
        assert_eq!(w.engine(S2).stats().forces, 1, "optimized sub: one force");
    }

    #[test]
    fn jitter_raises_mean_and_creates_variance() {
        let mut lat = Vec::new();
        for seed in 0..20 {
            let mut cfg = WorldConfig::latency(2, EngineConfig::default(), seed);
            cfg.seed = seed;
            let spec = AppSpec::minimal(S1, &[S2], true, CommitMode::TwoPhase, 1);
            let (_, r) = run_one(cfg, spec);
            lat.push(r.latency().as_millis_f64());
        }
        let mean = lat.iter().sum::<f64>() / lat.len() as f64;
        let spread = lat.iter().cloned().fold(f64::MIN, f64::max)
            - lat.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            mean > 90.0,
            "jitter adds to the deterministic path, mean {mean}"
        );
        assert!(spread > 1.0, "different seeds must differ, spread {spread}");
    }

    #[test]
    fn nonblocking_one_subordinate_latency_in_paper_band() {
        // Paper: static 150, measured ~145+ (sd 37).
        let cfg = no_jitter(WorldConfig::latency(2, EngineConfig::default(), 1));
        let spec = AppSpec::minimal(S1, &[S2], true, CommitMode::NonBlocking, 1);
        let (w, r) = run_one(cfg, spec);
        let ms = r.latency().as_millis_f64();
        assert!((120.0..160.0).contains(&ms), "latency {ms}ms");
        assert_eq!(w.engine(S2).stats().forces, 2, "nb sub forces two records");
    }

    #[test]
    fn multi_rep_runs_complete_and_stay_consistent() {
        let cfg = no_jitter(WorldConfig::latency(2, EngineConfig::default(), 3));
        let spec = AppSpec::minimal(S1, &[S2], true, CommitMode::TwoPhase, 25);
        let (w, _) = run_one(cfg, spec);
        assert_eq!(w.records(0).len(), 25);
        for r in w.records(0) {
            assert_eq!(r.outcome, Outcome::Committed);
        }
    }

    #[test]
    fn throughput_mode_runs_and_group_commit_batches() {
        let mut tps = Vec::new();
        for gc in [false, true] {
            let cfg = WorldConfig::throughput(5, gc, 8, 7);
            let mut w = World::new(cfg);
            // Enough concurrent client pairs (each with its own
            // server, as in the paper) to saturate the log disk, so
            // batching has something to batch.
            for k in 0..8u32 {
                let mut spec = AppSpec::minimal(S1, &[], true, CommitMode::TwoPhase, 40);
                spec.ops[0].server = ServerId(k + 1);
                spec.ops[0].object = ObjectId(1000 + k as u64);
                w.add_app(spec);
            }
            let mut s = Scheduler::new(7);
            w.start(&mut s);
            assert!(w.run(&mut s, Time(600_000_000)));
            let total: usize = (0..8).map(|a| w.records(a).len()).sum();
            let secs = s.now().as_secs_f64();
            tps.push(total as f64 / secs);
        }
        assert!(
            tps[1] > tps[0],
            "group commit must raise update throughput: {tps:?}"
        );
    }

    #[test]
    fn single_thread_is_slower_than_five() {
        let mut tps = Vec::new();
        for threads in [1usize, 5] {
            let cfg = WorldConfig::throughput(threads, true, 3, 9);
            let mut w = World::new(cfg);
            for k in 0..3u32 {
                let mut spec = AppSpec::minimal(S1, &[], false, CommitMode::TwoPhase, 40);
                spec.ops[0].server = ServerId(k + 1);
                spec.ops[0].object = ObjectId(1000 + k as u64);
                w.add_app(spec);
            }
            let mut s = Scheduler::new(9);
            w.start(&mut s);
            assert!(w.run(&mut s, Time(120_000_000)));
            let total: usize = (0..3).map(|a| w.records(a).len()).sum();
            tps.push(total as f64 / s.now().as_secs_f64());
        }
        assert!(tps[1] > tps[0] * 1.1, "threads must help reads: {tps:?}");
    }

    #[test]
    fn abort_relays_through_intermediate_sites() {
        // Ref [7]: the abort initiator knows only its direct callee
        // (site 2); site 2's communication manager knows the
        // transaction also spread to site 3. The abort must relay
        // B -> C even though A never heard of C.
        let cfg = no_jitter(WorldConfig::latency(3, EngineConfig::default(), 5));
        let mut w = World::new(cfg);
        let mut s = Scheduler::new(5);
        // Build the family by hand: begin at site 1.
        let tid = {
            let actions = w
                .sites
                .get_mut(&S1)
                .unwrap()
                .engine
                .handle(camelot_core::Input::Begin { req: 1 }, Time::ZERO);
            match &actions[0] {
                camelot_core::Action::Began { tid, .. } => tid.clone(),
                other => panic!("{other:?}"),
            }
        };
        // Site 3 joined (an operation forwarded by site 2's server).
        World::tm_dispatch(
            &mut w,
            &mut s,
            SiteId(3),
            camelot_core::Input::Join {
                tid: tid.clone(),
                server: ServerId(1),
            },
        );
        // Site 2 joined too, and ITS CornMan knows about site 3.
        World::tm_dispatch(
            &mut w,
            &mut s,
            S2,
            camelot_core::Input::Join {
                tid: tid.clone(),
                server: ServerId(1),
            },
        );
        w.sites
            .get_mut(&S2)
            .unwrap()
            .comman
            .note_outgoing(tid.family, SiteId(3));
        // Site 1 aborts knowing only site 2.
        World::tm_dispatch(
            &mut w,
            &mut s,
            S1,
            camelot_core::Input::AbortTx {
                req: 2,
                tid: tid.clone(),
                reason: camelot_types::AbortReason::Application,
                participants: vec![S2],
            },
        );
        s.run(&mut w);
        // Site 3 learned the abort via the relay.
        assert_eq!(
            w.engine(SiteId(3)).resolution(&tid.family),
            Some(Outcome::Aborted),
            "abort must relay through site 2"
        );
        assert_eq!(w.engine(SiteId(3)).live_families(), 0);
    }

    #[test]
    fn multicast_reduces_send_serialization() {
        // With three subordinates the sequential sender pays 2 extra
        // cycle times on the last prepare; multicast pays none.
        let mk = |multicast: bool| {
            let mut cfg = no_jitter(WorldConfig::latency(4, EngineConfig::default(), 5));
            cfg.net.multicast = multicast;
            let spec = AppSpec::minimal(
                S1,
                &[SiteId(2), SiteId(3), SiteId(4)],
                true,
                CommitMode::TwoPhase,
                1,
            );
            let (_, r) = run_one(cfg, spec);
            r.latency()
        };
        let seq = mk(false);
        let mc = mk(true);
        assert!(mc < seq, "multicast {mc} must beat sequential {seq}");
    }
}
