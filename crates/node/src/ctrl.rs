//! Control-plane protocol for `camelot-site` processes.
//!
//! A site process exposes two sockets: the *data* socket carrying
//! inter-TranMan traffic (see `camelot_net::SocketTransport`) and a
//! *control* TCP socket carrying this protocol. The control plane is
//! the multi-process stand-in for the in-process [`Client`] handle and
//! the test harness hooks — beginning transactions, issuing
//! operations, committing with an explicit participant list, arming
//! crash points, and draining the trace ring.
//!
//! Requests and replies use the repo's wire format, carried in the
//! same length-prefixed CRC-guarded frames as the data plane, so one
//! `FrameDecoder` per connection reassembles them from the stream.
//!
//! [`Client`]: ../../camelot_rt/client/struct.Client.html

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration as StdDuration;

use camelot_net::{encode_frame, FaultStats, FrameDecoder, TransportStats};
use camelot_obs::{PhaseSnapshot, ProtocolPhaseSnapshot};
use camelot_types::wire::{Reader, Wire, Writer};
use camelot_types::{CamelotError, CrashPoint, ObjectId, Result, ServerId, SiteId, Tid};

/// One site's data-plane address, as distributed by the launcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    pub site: SiteId,
    /// Socket address in its canonical textual form.
    pub addr: String,
}

impl Wire for PeerEntry {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.site);
        w.put_str(&self.addr);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(PeerEntry {
            site: r.get()?,
            addr: r.get_str()?,
        })
    }
}

/// A request to a site process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlRequest {
    /// Liveness probe; answered with [`CtrlReply::Pong`].
    Ping,
    /// Install the data-plane address of every peer site.
    Peers { peers: Vec<PeerEntry> },
    /// `begin-transaction` homed at this site.
    Begin,
    /// Read an object at a local server under `tid`.
    Read {
        tid: Tid,
        server: ServerId,
        object: ObjectId,
    },
    /// Write an object at a local server under `tid`.
    Write {
        tid: Tid,
        server: ServerId,
        object: ObjectId,
        value: Vec<u8>,
    },
    /// Commit `tid` with this site as coordinator. `participants`
    /// declares the remote spread — in a multi-process deployment the
    /// driving application talks to each site directly, so the home
    /// communication manager never spies the remote operations.
    Commit {
        tid: Tid,
        nonblocking: bool,
        participants: Vec<SiteId>,
    },
    /// Abort `tid`, with the same explicit participant list.
    Abort { tid: Tid, participants: Vec<SiteId> },
    /// The committed (post-recovery-visible) value of an object.
    CommittedValue { server: ServerId, object: ObjectId },
    /// One-line-per-entity dump of live protocol state.
    DebugState,
    /// Arm a one-shot crash of this site at the named point. When the
    /// crash fires, the watchdog turns it into a real process exit.
    ArmCrash { point: CrashPoint },
    /// Stop all fault injection on this site's plan.
    Heal,
    /// Drain the site's trace ring as JSON Lines.
    DrainTrace,
    /// Clean process exit.
    Shutdown,
    /// Snapshot the data-plane transport's outbound counters.
    TransportStats,
    /// Snapshot the site's fault-injection counters.
    FaultStats,
    /// Install a symmetric partition between two site groups on this
    /// site's fault plan. Each site only rolls faults for its own
    /// outbound traffic, so the launcher installs the same partition
    /// on every site to make both directions go dark.
    Partition { a: Vec<SiteId>, b: Vec<SiteId> },
    /// Scale a site's protocol-timer durations by `per_mille`/1000
    /// (1500 = timers fire 50% late; 1000 clears the skew).
    SetSkew { site: SiteId, per_mille: u32 },
    /// Per-site restart counts. Only the supervisor's own control
    /// listener answers this; a plain site replies with an error.
    RestartStats,
    /// Snapshot the site's per-phase latency histograms (plain and
    /// protocol-keyed). Read-only: histograms keep accumulating.
    PhaseStats,
    /// Snapshot the site's engine/WAL/server/queue counters — the
    /// scrape endpoint the `camelot-scope` collector polls.
    EngineStats,
    /// Drain at most `max_events` trace events as JSON Lines. Repeat
    /// until an empty reply: unlike [`CtrlRequest::DrainTrace`], a
    /// chunked drain can never exceed the frame cap however large the
    /// ring has grown.
    DrainTraceChunk { max_events: u32 },
    /// Test hook: emit `events` synthetic trace events into the
    /// site's ring, so harnesses can provoke oversized rings without
    /// running a workload.
    FillTrace { events: u32 },
}

const Q_PING: u8 = 1;
const Q_PEERS: u8 = 2;
const Q_BEGIN: u8 = 3;
const Q_READ: u8 = 4;
const Q_WRITE: u8 = 5;
const Q_COMMIT: u8 = 6;
const Q_ABORT: u8 = 7;
const Q_COMMITTED_VALUE: u8 = 8;
const Q_DEBUG_STATE: u8 = 9;
const Q_ARM_CRASH: u8 = 10;
const Q_HEAL: u8 = 11;
const Q_DRAIN_TRACE: u8 = 12;
const Q_SHUTDOWN: u8 = 13;
const Q_TRANSPORT_STATS: u8 = 14;
const Q_FAULT_STATS: u8 = 15;
const Q_PARTITION: u8 = 16;
const Q_SET_SKEW: u8 = 17;
const Q_RESTART_STATS: u8 = 18;
const Q_PHASE_STATS: u8 = 19;
const Q_ENGINE_STATS: u8 = 20;
const Q_DRAIN_TRACE_CHUNK: u8 = 21;
const Q_FILL_TRACE: u8 = 22;

impl Wire for CtrlRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            CtrlRequest::Ping => w.put_u8(Q_PING),
            CtrlRequest::Peers { peers } => {
                w.put_u8(Q_PEERS);
                w.put_seq(peers);
            }
            CtrlRequest::Begin => w.put_u8(Q_BEGIN),
            CtrlRequest::Read {
                tid,
                server,
                object,
            } => {
                w.put_u8(Q_READ);
                w.put(tid);
                w.put(server);
                w.put(object);
            }
            CtrlRequest::Write {
                tid,
                server,
                object,
                value,
            } => {
                w.put_u8(Q_WRITE);
                w.put(tid);
                w.put(server);
                w.put(object);
                w.put_bytes(value);
            }
            CtrlRequest::Commit {
                tid,
                nonblocking,
                participants,
            } => {
                w.put_u8(Q_COMMIT);
                w.put(tid);
                w.put_bool(*nonblocking);
                w.put_seq(participants);
            }
            CtrlRequest::Abort { tid, participants } => {
                w.put_u8(Q_ABORT);
                w.put(tid);
                w.put_seq(participants);
            }
            CtrlRequest::CommittedValue { server, object } => {
                w.put_u8(Q_COMMITTED_VALUE);
                w.put(server);
                w.put(object);
            }
            CtrlRequest::DebugState => w.put_u8(Q_DEBUG_STATE),
            CtrlRequest::ArmCrash { point } => {
                w.put_u8(Q_ARM_CRASH);
                w.put_u8(point.to_wire());
            }
            CtrlRequest::Heal => w.put_u8(Q_HEAL),
            CtrlRequest::DrainTrace => w.put_u8(Q_DRAIN_TRACE),
            CtrlRequest::Shutdown => w.put_u8(Q_SHUTDOWN),
            CtrlRequest::TransportStats => w.put_u8(Q_TRANSPORT_STATS),
            CtrlRequest::FaultStats => w.put_u8(Q_FAULT_STATS),
            CtrlRequest::Partition { a, b } => {
                w.put_u8(Q_PARTITION);
                w.put_seq(a);
                w.put_seq(b);
            }
            CtrlRequest::SetSkew { site, per_mille } => {
                w.put_u8(Q_SET_SKEW);
                w.put(site);
                w.put_u32(*per_mille);
            }
            CtrlRequest::RestartStats => w.put_u8(Q_RESTART_STATS),
            CtrlRequest::PhaseStats => w.put_u8(Q_PHASE_STATS),
            CtrlRequest::EngineStats => w.put_u8(Q_ENGINE_STATS),
            CtrlRequest::DrainTraceChunk { max_events } => {
                w.put_u8(Q_DRAIN_TRACE_CHUNK);
                w.put_u32(*max_events);
            }
            CtrlRequest::FillTrace { events } => {
                w.put_u8(Q_FILL_TRACE);
                w.put_u32(*events);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            Q_PING => CtrlRequest::Ping,
            Q_PEERS => CtrlRequest::Peers {
                peers: r.get_seq()?,
            },
            Q_BEGIN => CtrlRequest::Begin,
            Q_READ => CtrlRequest::Read {
                tid: r.get()?,
                server: r.get()?,
                object: r.get()?,
            },
            Q_WRITE => CtrlRequest::Write {
                tid: r.get()?,
                server: r.get()?,
                object: r.get()?,
                value: r.get_bytes()?,
            },
            Q_COMMIT => CtrlRequest::Commit {
                tid: r.get()?,
                nonblocking: r.get_bool()?,
                participants: r.get_seq()?,
            },
            Q_ABORT => CtrlRequest::Abort {
                tid: r.get()?,
                participants: r.get_seq()?,
            },
            Q_COMMITTED_VALUE => CtrlRequest::CommittedValue {
                server: r.get()?,
                object: r.get()?,
            },
            Q_DEBUG_STATE => CtrlRequest::DebugState,
            Q_ARM_CRASH => {
                let raw = r.get_u8()?;
                let point = CrashPoint::from_wire(raw)
                    .ok_or_else(|| CamelotError::Codec(format!("bad crash point {raw}")))?;
                CtrlRequest::ArmCrash { point }
            }
            Q_HEAL => CtrlRequest::Heal,
            Q_DRAIN_TRACE => CtrlRequest::DrainTrace,
            Q_SHUTDOWN => CtrlRequest::Shutdown,
            Q_TRANSPORT_STATS => CtrlRequest::TransportStats,
            Q_FAULT_STATS => CtrlRequest::FaultStats,
            Q_PARTITION => CtrlRequest::Partition {
                a: r.get_seq()?,
                b: r.get_seq()?,
            },
            Q_SET_SKEW => CtrlRequest::SetSkew {
                site: r.get()?,
                per_mille: r.get_u32()?,
            },
            Q_RESTART_STATS => CtrlRequest::RestartStats,
            Q_PHASE_STATS => CtrlRequest::PhaseStats,
            Q_ENGINE_STATS => CtrlRequest::EngineStats,
            Q_DRAIN_TRACE_CHUNK => CtrlRequest::DrainTraceChunk {
                max_events: r.get_u32()?,
            },
            Q_FILL_TRACE => CtrlRequest::FillTrace {
                events: r.get_u32()?,
            },
            v => return Err(CamelotError::Codec(format!("unknown ctrl request {v}"))),
        })
    }
}

/// A site process's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlReply {
    Ok,
    Pong {
        site: SiteId,
    },
    Began {
        tid: Tid,
    },
    Value {
        value: Vec<u8>,
    },
    /// Commit outcome: `true` is committed, `false` aborted.
    Outcome {
        committed: bool,
    },
    State {
        dump: String,
    },
    Trace {
        jsonl: String,
    },
    /// A typed error rendered for transport; the call provably or
    /// possibly did not take effect (the detail says which).
    Err {
        detail: String,
    },
    /// Snapshot of the data-plane transport's outbound counters.
    Transport {
        stats: TransportStats,
    },
    /// Snapshot of the site's fault-injection counters.
    Fault {
        stats: FaultStats,
    },
    /// Per-site restart counts from the supervisor.
    Restarts {
        counts: Vec<RestartEntry>,
    },
    /// Per-phase latency histograms: plain and protocol-keyed.
    /// Boxed: the snapshots are multi-KiB fixed-bucket arrays and
    /// would otherwise balloon every reply on the stack.
    Phases {
        phases: Box<PhaseSnapshot>,
        proto: Box<ProtocolPhaseSnapshot>,
    },
    /// Engine/WAL/server/queue counter snapshot.
    Engine {
        stats: SiteStatsWire,
    },
}

/// A site's counter snapshot on the wire — the flat-u64 rendering of
/// `camelot_rt::SiteStats` (histograms travel separately via
/// [`CtrlReply::Phases`]). All counters are cumulative since process
/// start; the collector derives rates by differencing scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteStatsWire {
    pub site: SiteId,
    // Engine protocol counters.
    pub begins: u64,
    pub nested_begins: u64,
    pub commits: u64,
    pub read_only_commits: u64,
    pub aborts: u64,
    pub forces: u64,
    pub lazy_appends: u64,
    pub datagrams: u64,
    pub piggybacked: u64,
    pub takeovers: u64,
    pub blocked: u64,
    pub live_families: u64,
    // WAL counters.
    pub wal_records: u64,
    pub wal_forces_requested: u64,
    pub wal_forces_effective: u64,
    // Runtime counters.
    pub lock_wait_us: u64,
    pub inputs: u64,
    pub platter_writes: u64,
    pub forces_satisfied: u64,
    pub max_batch: u64,
    pub lazy_drained: u64,
    pub queue_ops: u64,
    pub queue_parked: u64,
    pub queue_vote_timeouts: u64,
    pub queue_cascades: u64,
    // Data-server counters (summed over the site's servers).
    pub reads: u64,
    pub writes: u64,
    pub lock_waits: u64,
    pub joins: u64,
    pub deadlocks: u64,
    // Trace-ring health: nonzero drops mean truncated timelines.
    pub trace_emitted: u64,
    pub trace_dropped: u64,
}

impl SiteStatsWire {
    /// All-zero counters for `site`.
    pub fn zeroed(site: SiteId) -> Self {
        SiteStatsWire {
            site,
            begins: 0,
            nested_begins: 0,
            commits: 0,
            read_only_commits: 0,
            aborts: 0,
            forces: 0,
            lazy_appends: 0,
            datagrams: 0,
            piggybacked: 0,
            takeovers: 0,
            blocked: 0,
            live_families: 0,
            wal_records: 0,
            wal_forces_requested: 0,
            wal_forces_effective: 0,
            lock_wait_us: 0,
            inputs: 0,
            platter_writes: 0,
            forces_satisfied: 0,
            max_batch: 0,
            lazy_drained: 0,
            queue_ops: 0,
            queue_parked: 0,
            queue_vote_timeouts: 0,
            queue_cascades: 0,
            reads: 0,
            writes: 0,
            lock_waits: 0,
            joins: 0,
            deadlocks: 0,
            trace_emitted: 0,
            trace_dropped: 0,
        }
    }

    /// The counters in stable `(name, value)` order — one source for
    /// the wire layout, JSON rendering, and rate derivation.
    pub fn fields(&self) -> [(&'static str, u64); 32] {
        [
            ("begins", self.begins),
            ("nested_begins", self.nested_begins),
            ("commits", self.commits),
            ("read_only_commits", self.read_only_commits),
            ("aborts", self.aborts),
            ("forces", self.forces),
            ("lazy_appends", self.lazy_appends),
            ("datagrams", self.datagrams),
            ("piggybacked", self.piggybacked),
            ("takeovers", self.takeovers),
            ("blocked", self.blocked),
            ("live_families", self.live_families),
            ("wal_records", self.wal_records),
            ("wal_forces_requested", self.wal_forces_requested),
            ("wal_forces_effective", self.wal_forces_effective),
            ("lock_wait_us", self.lock_wait_us),
            ("inputs", self.inputs),
            ("platter_writes", self.platter_writes),
            ("forces_satisfied", self.forces_satisfied),
            ("max_batch", self.max_batch),
            ("lazy_drained", self.lazy_drained),
            ("queue_ops", self.queue_ops),
            ("queue_parked", self.queue_parked),
            ("queue_vote_timeouts", self.queue_vote_timeouts),
            ("queue_cascades", self.queue_cascades),
            ("reads", self.reads),
            ("writes", self.writes),
            ("lock_waits", self.lock_waits),
            ("joins", self.joins),
            ("deadlocks", self.deadlocks),
            ("trace_emitted", self.trace_emitted),
            ("trace_dropped", self.trace_dropped),
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 32] {
        [
            &mut self.begins,
            &mut self.nested_begins,
            &mut self.commits,
            &mut self.read_only_commits,
            &mut self.aborts,
            &mut self.forces,
            &mut self.lazy_appends,
            &mut self.datagrams,
            &mut self.piggybacked,
            &mut self.takeovers,
            &mut self.blocked,
            &mut self.live_families,
            &mut self.wal_records,
            &mut self.wal_forces_requested,
            &mut self.wal_forces_effective,
            &mut self.lock_wait_us,
            &mut self.inputs,
            &mut self.platter_writes,
            &mut self.forces_satisfied,
            &mut self.max_batch,
            &mut self.lazy_drained,
            &mut self.queue_ops,
            &mut self.queue_parked,
            &mut self.queue_vote_timeouts,
            &mut self.queue_cascades,
            &mut self.reads,
            &mut self.writes,
            &mut self.lock_waits,
            &mut self.joins,
            &mut self.deadlocks,
            &mut self.trace_emitted,
            &mut self.trace_dropped,
        ]
    }
}

impl Wire for SiteStatsWire {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.site);
        for (_, v) in self.fields() {
            w.put_u64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut s = SiteStatsWire::zeroed(r.get()?);
        for f in s.fields_mut() {
            *f = r.get_u64()?;
        }
        Ok(s)
    }
}

/// One site's restart count, as reported by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartEntry {
    pub site: SiteId,
    pub restarts: u32,
}

impl Wire for RestartEntry {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.site);
        w.put_u32(self.restarts);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(RestartEntry {
            site: r.get()?,
            restarts: r.get_u32()?,
        })
    }
}

const R_OK: u8 = 1;
const R_PONG: u8 = 2;
const R_BEGAN: u8 = 3;
const R_VALUE: u8 = 4;
const R_OUTCOME: u8 = 5;
const R_STATE: u8 = 6;
const R_TRACE: u8 = 7;
const R_ERR: u8 = 8;
const R_TRANSPORT: u8 = 9;
const R_FAULT: u8 = 10;
const R_RESTARTS: u8 = 11;
const R_PHASES: u8 = 12;
const R_ENGINE: u8 = 13;

impl Wire for CtrlReply {
    fn encode(&self, w: &mut Writer) {
        match self {
            CtrlReply::Ok => w.put_u8(R_OK),
            CtrlReply::Pong { site } => {
                w.put_u8(R_PONG);
                w.put(site);
            }
            CtrlReply::Began { tid } => {
                w.put_u8(R_BEGAN);
                w.put(tid);
            }
            CtrlReply::Value { value } => {
                w.put_u8(R_VALUE);
                w.put_bytes(value);
            }
            CtrlReply::Outcome { committed } => {
                w.put_u8(R_OUTCOME);
                w.put_bool(*committed);
            }
            CtrlReply::State { dump } => {
                w.put_u8(R_STATE);
                w.put_str(dump);
            }
            CtrlReply::Trace { jsonl } => {
                w.put_u8(R_TRACE);
                w.put_str(jsonl);
            }
            CtrlReply::Err { detail } => {
                w.put_u8(R_ERR);
                w.put_str(detail);
            }
            CtrlReply::Transport { stats } => {
                w.put_u8(R_TRANSPORT);
                w.put(stats);
            }
            CtrlReply::Fault { stats } => {
                w.put_u8(R_FAULT);
                w.put(stats);
            }
            CtrlReply::Restarts { counts } => {
                w.put_u8(R_RESTARTS);
                w.put_seq(counts);
            }
            CtrlReply::Phases { phases, proto } => {
                w.put_u8(R_PHASES);
                w.put(phases.as_ref());
                w.put(proto.as_ref());
            }
            CtrlReply::Engine { stats } => {
                w.put_u8(R_ENGINE);
                w.put(stats);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            R_OK => CtrlReply::Ok,
            R_PONG => CtrlReply::Pong { site: r.get()? },
            R_BEGAN => CtrlReply::Began { tid: r.get()? },
            R_VALUE => CtrlReply::Value {
                value: r.get_bytes()?,
            },
            R_OUTCOME => CtrlReply::Outcome {
                committed: r.get_bool()?,
            },
            R_STATE => CtrlReply::State { dump: r.get_str()? },
            R_TRACE => CtrlReply::Trace {
                jsonl: r.get_str()?,
            },
            R_ERR => CtrlReply::Err {
                detail: r.get_str()?,
            },
            R_TRANSPORT => CtrlReply::Transport { stats: r.get()? },
            R_FAULT => CtrlReply::Fault { stats: r.get()? },
            R_RESTARTS => CtrlReply::Restarts {
                counts: r.get_seq()?,
            },
            R_PHASES => CtrlReply::Phases {
                phases: Box::new(r.get()?),
                proto: Box::new(r.get()?),
            },
            R_ENGINE => CtrlReply::Engine { stats: r.get()? },
            v => return Err(CamelotError::Codec(format!("unknown ctrl reply {v}"))),
        })
    }
}

/// Writes one wire value as a frame on a stream.
pub fn write_framed<T: Wire>(stream: &mut TcpStream, value: &T) -> std::io::Result<()> {
    stream.write_all(&encode_frame(&value.to_bytes()))
}

/// Reads the next framed wire value off a stream, feeding `dec`.
/// `Ok(None)` means the peer closed the stream cleanly between frames.
pub fn read_framed<T: Wire>(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Result<Option<T>> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(payload) = dec.next_frame()? {
            return T::from_bytes(&payload).map(Some);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if dec.buffered() == 0 {
                    return Ok(None);
                }
                return Err(CamelotError::Codec("ctrl stream ended mid-frame".into()));
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e) => return Err(CamelotError::Log(format!("ctrl read: {e}"))),
        }
    }
}

/// A synchronous client of one site process's control socket.
pub struct CtrlClient {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl CtrlClient {
    /// Connects, retrying briefly — the site process prints its
    /// handshake before it starts accepting, so the first connect can
    /// race the listener.
    pub fn connect(addr: SocketAddr) -> std::io::Result<CtrlClient> {
        Self::connect_with(addr, 50)
    }

    /// [`CtrlClient::connect`] with an explicit retry budget — a
    /// scraper probing a possibly-down site wants to give up after one
    /// or two attempts instead of blocking for a second.
    pub fn connect_with(addr: SocketAddr, attempts: u32) -> std::io::Result<CtrlClient> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    return Ok(CtrlClient {
                        stream,
                        dec: FrameDecoder::new(),
                    });
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(StdDuration::from_millis(20));
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("connect failed")))
    }

    /// One request/reply round trip.
    pub fn call(&mut self, req: &CtrlRequest) -> Result<CtrlReply> {
        write_framed(&mut self.stream, req)
            .map_err(|e| CamelotError::Log(format!("ctrl write: {e}")))?;
        read_framed(&mut self.stream, &mut self.dec)?
            .ok_or_else(|| CamelotError::Log("ctrl peer closed".into()))
    }

    /// Calls and converts a [`CtrlReply::Err`] into a typed error.
    fn call_ok(&mut self, req: &CtrlRequest) -> Result<CtrlReply> {
        match self.call(req)? {
            CtrlReply::Err { detail } => Err(CamelotError::Log(detail)),
            other => Ok(other),
        }
    }

    pub fn ping(&mut self) -> Result<SiteId> {
        match self.call_ok(&CtrlRequest::Ping)? {
            CtrlReply::Pong { site } => Ok(site),
            other => Err(unexpected(other)),
        }
    }

    pub fn set_peers(&mut self, peers: Vec<PeerEntry>) -> Result<()> {
        match self.call_ok(&CtrlRequest::Peers { peers })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn begin(&mut self) -> Result<Tid> {
        match self.call_ok(&CtrlRequest::Begin)? {
            CtrlReply::Began { tid } => Ok(tid),
            other => Err(unexpected(other)),
        }
    }

    pub fn read(&mut self, tid: &Tid, server: ServerId, object: ObjectId) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::Read {
            tid: tid.clone(),
            server,
            object,
        })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    pub fn write(
        &mut self,
        tid: &Tid,
        server: ServerId,
        object: ObjectId,
        value: Vec<u8>,
    ) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::Write {
            tid: tid.clone(),
            server,
            object,
            value,
        })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    /// Returns true when the transaction committed.
    pub fn commit(
        &mut self,
        tid: &Tid,
        nonblocking: bool,
        participants: Vec<SiteId>,
    ) -> Result<bool> {
        match self.call_ok(&CtrlRequest::Commit {
            tid: tid.clone(),
            nonblocking,
            participants,
        })? {
            CtrlReply::Outcome { committed } => Ok(committed),
            other => Err(unexpected(other)),
        }
    }

    pub fn abort(&mut self, tid: &Tid, participants: Vec<SiteId>) -> Result<()> {
        match self.call_ok(&CtrlRequest::Abort {
            tid: tid.clone(),
            participants,
        })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn committed_value(&mut self, server: ServerId, object: ObjectId) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::CommittedValue { server, object })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    pub fn debug_state(&mut self) -> Result<String> {
        match self.call_ok(&CtrlRequest::DebugState)? {
            CtrlReply::State { dump } => Ok(dump),
            other => Err(unexpected(other)),
        }
    }

    pub fn arm_crash(&mut self, point: CrashPoint) -> Result<()> {
        match self.call_ok(&CtrlRequest::ArmCrash { point })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn heal(&mut self) -> Result<()> {
        match self.call_ok(&CtrlRequest::Heal)? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Default chunk size for [`CtrlClient::drain_trace`]: at ~120
    /// bytes per rendered event, 2048 events stay well inside the
    /// 1 MiB frame cap with an order of magnitude to spare.
    pub const DRAIN_CHUNK: u32 = 2048;

    /// Drains the site's whole trace ring as JSON Lines, fetching it
    /// in bounded chunks so no single reply can hit the frame cap.
    pub fn drain_trace(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            let chunk = self.drain_trace_chunk(Self::DRAIN_CHUNK)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.push_str(&chunk);
        }
    }

    /// One bounded drain step: at most `max_events` rendered events,
    /// empty string when the ring is dry.
    pub fn drain_trace_chunk(&mut self, max_events: u32) -> Result<String> {
        match self.call_ok(&CtrlRequest::DrainTraceChunk { max_events })? {
            CtrlReply::Trace { jsonl } => Ok(jsonl),
            other => Err(unexpected(other)),
        }
    }

    pub fn phase_stats(&mut self) -> Result<(PhaseSnapshot, ProtocolPhaseSnapshot)> {
        match self.call_ok(&CtrlRequest::PhaseStats)? {
            CtrlReply::Phases { phases, proto } => Ok((*phases, *proto)),
            other => Err(unexpected(other)),
        }
    }

    pub fn engine_stats(&mut self) -> Result<SiteStatsWire> {
        match self.call_ok(&CtrlRequest::EngineStats)? {
            CtrlReply::Engine { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Test hook: emit `events` synthetic trace events at the site.
    pub fn fill_trace(&mut self, events: u32) -> Result<()> {
        match self.call_ok(&CtrlRequest::FillTrace { events })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn transport_stats(&mut self) -> Result<TransportStats> {
        match self.call_ok(&CtrlRequest::TransportStats)? {
            CtrlReply::Transport { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    pub fn fault_stats(&mut self) -> Result<FaultStats> {
        match self.call_ok(&CtrlRequest::FaultStats)? {
            CtrlReply::Fault { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    pub fn partition(&mut self, a: &[SiteId], b: &[SiteId]) -> Result<()> {
        match self.call_ok(&CtrlRequest::Partition {
            a: a.to_vec(),
            b: b.to_vec(),
        })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn set_skew(&mut self, site: SiteId, per_mille: u32) -> Result<()> {
        match self.call_ok(&CtrlRequest::SetSkew { site, per_mille })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn restart_stats(&mut self) -> Result<Vec<RestartEntry>> {
        match self.call_ok(&CtrlRequest::RestartStats)? {
            CtrlReply::Restarts { counts } => Ok(counts),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the process to exit; the closed stream is the expected
    /// outcome, so transport errors after the request are swallowed.
    pub fn shutdown(&mut self) {
        let _ = self.call(&CtrlRequest::Shutdown);
    }
}

fn unexpected(reply: CtrlReply) -> CamelotError {
    CamelotError::Internal(format!("unexpected ctrl reply {reply:?}"))
}

/// The `ready` handshake a `camelot-site` process prints on stdout
/// once both sockets are bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    pub site: SiteId,
    pub data: SocketAddr,
    pub ctrl: SocketAddr,
}

impl Handshake {
    /// Renders the stdout line: `ready site=1 data=ADDR ctrl=ADDR`.
    pub fn render(&self) -> String {
        format!(
            "ready site={} data={} ctrl={}",
            self.site.0, self.data, self.ctrl
        )
    }

    /// Parses a handshake line (ignores unrelated lines by returning
    /// `None`).
    pub fn parse(line: &str) -> Option<Handshake> {
        let line = line.trim();
        let rest = line.strip_prefix("ready ")?;
        let mut site = None;
        let mut data = None;
        let mut ctrl = None;
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("site=") {
                site = v.parse::<u32>().ok().map(SiteId);
            } else if let Some(v) = tok.strip_prefix("data=") {
                data = v.parse::<SocketAddr>().ok();
            } else if let Some(v) = tok.strip_prefix("ctrl=") {
                ctrl = v.parse::<SocketAddr>().ok();
            }
        }
        Some(Handshake {
            site: site?,
            data: data?,
            ctrl: ctrl?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_types::FamilyId;

    fn tid() -> Tid {
        Tid::top_level(FamilyId {
            origin: SiteId(2),
            seq: 7,
        })
    }

    fn all_requests() -> Vec<CtrlRequest> {
        vec![
            CtrlRequest::Ping,
            CtrlRequest::Peers {
                peers: vec![
                    PeerEntry {
                        site: SiteId(1),
                        addr: "127.0.0.1:4001".into(),
                    },
                    PeerEntry {
                        site: SiteId(2),
                        addr: "127.0.0.1:4002".into(),
                    },
                ],
            },
            CtrlRequest::Begin,
            CtrlRequest::Read {
                tid: tid(),
                server: ServerId(1),
                object: ObjectId(9),
            },
            CtrlRequest::Write {
                tid: tid(),
                server: ServerId(1),
                object: ObjectId(9),
                value: vec![1, 2, 3],
            },
            CtrlRequest::Commit {
                tid: tid(),
                nonblocking: true,
                participants: vec![SiteId(2), SiteId(3)],
            },
            CtrlRequest::Abort {
                tid: tid(),
                participants: vec![SiteId(3)],
            },
            CtrlRequest::CommittedValue {
                server: ServerId(1),
                object: ObjectId(9),
            },
            CtrlRequest::DebugState,
            CtrlRequest::ArmCrash {
                point: CrashPoint::PostForcePreSend,
            },
            CtrlRequest::Heal,
            CtrlRequest::DrainTrace,
            CtrlRequest::Shutdown,
            CtrlRequest::TransportStats,
            CtrlRequest::FaultStats,
            CtrlRequest::Partition {
                a: vec![SiteId(1), SiteId(2)],
                b: vec![SiteId(3)],
            },
            CtrlRequest::SetSkew {
                site: SiteId(2),
                per_mille: 1500,
            },
            CtrlRequest::RestartStats,
            CtrlRequest::PhaseStats,
            CtrlRequest::EngineStats,
            CtrlRequest::DrainTraceChunk { max_events: 2048 },
            CtrlRequest::FillTrace { events: 20000 },
        ]
    }

    fn all_replies() -> Vec<CtrlReply> {
        vec![
            CtrlReply::Ok,
            CtrlReply::Pong { site: SiteId(3) },
            CtrlReply::Began { tid: tid() },
            CtrlReply::Value { value: vec![7; 9] },
            CtrlReply::Outcome { committed: true },
            CtrlReply::Outcome { committed: false },
            CtrlReply::State {
                dump: "s1 engine: f live".into(),
            },
            CtrlReply::Trace {
                jsonl: "{\"kind\":\"crash\"}\n".into(),
            },
            CtrlReply::Err {
                detail: "timeout".into(),
            },
            CtrlReply::Transport {
                stats: TransportStats {
                    sends: 10,
                    send_failures: 1,
                    connects: 3,
                    connect_failures: 2,
                    enqueued: 11,
                    queue_drops: 4,
                    queue_depth: 5,
                    max_queue_depth: 9,
                },
            },
            CtrlReply::Fault {
                stats: FaultStats {
                    drops: 1,
                    delays: 2,
                    duplicates: 3,
                    crashes: 4,
                    partition_drops: 5,
                    skewed_timers: 6,
                },
            },
            CtrlReply::Restarts {
                counts: vec![
                    RestartEntry {
                        site: SiteId(1),
                        restarts: 0,
                    },
                    RestartEntry {
                        site: SiteId(2),
                        restarts: 3,
                    },
                ],
            },
            CtrlReply::Phases {
                phases: Box::new(sample_phases()),
                proto: Box::new(sample_proto_phases()),
            },
            CtrlReply::Engine {
                stats: sample_engine_stats(),
            },
        ]
    }

    fn sample_phases() -> PhaseSnapshot {
        let h = camelot_obs::PhaseHistograms::default();
        h.record_us(camelot_obs::Phase::Commit2pc, 1234);
        h.record_us(camelot_obs::Phase::ForceWait, 88);
        h.snapshot()
    }

    fn sample_proto_phases() -> ProtocolPhaseSnapshot {
        let h = camelot_obs::ProtocolPhaseHistograms::default();
        h.record_us(
            camelot_obs::AuditProtocol::NonBlocking,
            camelot_obs::Phase::CommitNb,
            4096,
        );
        h.snapshot()
    }

    fn sample_engine_stats() -> SiteStatsWire {
        let mut s = SiteStatsWire::zeroed(SiteId(2));
        // Distinct values per field so a transposed decode cannot
        // pass the roundtrip test.
        for (i, f) in s.fields_mut().into_iter().enumerate() {
            *f = 1000 + i as u64;
        }
        s
    }

    #[test]
    fn every_request_roundtrips() {
        for q in all_requests() {
            let b = q.to_bytes();
            assert_eq!(CtrlRequest::from_bytes(&b).unwrap(), q, "{q:?}");
        }
    }

    #[test]
    fn every_reply_roundtrips() {
        for r in all_replies() {
            let b = r.to_bytes();
            assert_eq!(CtrlReply::from_bytes(&b).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn truncated_requests_fail_cleanly() {
        for q in all_requests() {
            let b = q.to_bytes();
            for cut in 0..b.len() {
                assert!(CtrlRequest::from_bytes(&b[..cut]).is_err());
            }
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(CtrlRequest::from_bytes(&[0]).is_err());
        assert!(CtrlRequest::from_bytes(&[99]).is_err());
        assert!(CtrlReply::from_bytes(&[99]).is_err());
        // Bad crash-point byte inside an otherwise valid ArmCrash.
        assert!(CtrlRequest::from_bytes(&[super::Q_ARM_CRASH, 77]).is_err());
    }

    #[test]
    fn handshake_roundtrips_and_rejects_noise() {
        let h = Handshake {
            site: SiteId(3),
            data: "127.0.0.1:5001".parse().unwrap(),
            ctrl: "127.0.0.1:5002".parse().unwrap(),
        };
        assert_eq!(Handshake::parse(&h.render()), Some(h.clone()));
        assert_eq!(Handshake::parse("starting up..."), None);
        assert_eq!(Handshake::parse("ready site=x data=y ctrl=z"), None);
    }
}
