//! Control-plane protocol for `camelot-site` processes.
//!
//! A site process exposes two sockets: the *data* socket carrying
//! inter-TranMan traffic (see `camelot_net::SocketTransport`) and a
//! *control* TCP socket carrying this protocol. The control plane is
//! the multi-process stand-in for the in-process [`Client`] handle and
//! the test harness hooks — beginning transactions, issuing
//! operations, committing with an explicit participant list, arming
//! crash points, and draining the trace ring.
//!
//! Requests and replies use the repo's wire format, carried in the
//! same length-prefixed CRC-guarded frames as the data plane, so one
//! `FrameDecoder` per connection reassembles them from the stream.
//!
//! [`Client`]: ../../camelot_rt/client/struct.Client.html

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration as StdDuration;

use camelot_net::{encode_frame, FaultStats, FrameDecoder, TransportStats};
use camelot_types::wire::{Reader, Wire, Writer};
use camelot_types::{CamelotError, CrashPoint, ObjectId, Result, ServerId, SiteId, Tid};

/// One site's data-plane address, as distributed by the launcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    pub site: SiteId,
    /// Socket address in its canonical textual form.
    pub addr: String,
}

impl Wire for PeerEntry {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.site);
        w.put_str(&self.addr);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(PeerEntry {
            site: r.get()?,
            addr: r.get_str()?,
        })
    }
}

/// A request to a site process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlRequest {
    /// Liveness probe; answered with [`CtrlReply::Pong`].
    Ping,
    /// Install the data-plane address of every peer site.
    Peers { peers: Vec<PeerEntry> },
    /// `begin-transaction` homed at this site.
    Begin,
    /// Read an object at a local server under `tid`.
    Read {
        tid: Tid,
        server: ServerId,
        object: ObjectId,
    },
    /// Write an object at a local server under `tid`.
    Write {
        tid: Tid,
        server: ServerId,
        object: ObjectId,
        value: Vec<u8>,
    },
    /// Commit `tid` with this site as coordinator. `participants`
    /// declares the remote spread — in a multi-process deployment the
    /// driving application talks to each site directly, so the home
    /// communication manager never spies the remote operations.
    Commit {
        tid: Tid,
        nonblocking: bool,
        participants: Vec<SiteId>,
    },
    /// Abort `tid`, with the same explicit participant list.
    Abort { tid: Tid, participants: Vec<SiteId> },
    /// The committed (post-recovery-visible) value of an object.
    CommittedValue { server: ServerId, object: ObjectId },
    /// One-line-per-entity dump of live protocol state.
    DebugState,
    /// Arm a one-shot crash of this site at the named point. When the
    /// crash fires, the watchdog turns it into a real process exit.
    ArmCrash { point: CrashPoint },
    /// Stop all fault injection on this site's plan.
    Heal,
    /// Drain the site's trace ring as JSON Lines.
    DrainTrace,
    /// Clean process exit.
    Shutdown,
    /// Snapshot the data-plane transport's outbound counters.
    TransportStats,
    /// Snapshot the site's fault-injection counters.
    FaultStats,
    /// Install a symmetric partition between two site groups on this
    /// site's fault plan. Each site only rolls faults for its own
    /// outbound traffic, so the launcher installs the same partition
    /// on every site to make both directions go dark.
    Partition { a: Vec<SiteId>, b: Vec<SiteId> },
    /// Scale a site's protocol-timer durations by `per_mille`/1000
    /// (1500 = timers fire 50% late; 1000 clears the skew).
    SetSkew { site: SiteId, per_mille: u32 },
    /// Per-site restart counts. Only the supervisor's own control
    /// listener answers this; a plain site replies with an error.
    RestartStats,
}

const Q_PING: u8 = 1;
const Q_PEERS: u8 = 2;
const Q_BEGIN: u8 = 3;
const Q_READ: u8 = 4;
const Q_WRITE: u8 = 5;
const Q_COMMIT: u8 = 6;
const Q_ABORT: u8 = 7;
const Q_COMMITTED_VALUE: u8 = 8;
const Q_DEBUG_STATE: u8 = 9;
const Q_ARM_CRASH: u8 = 10;
const Q_HEAL: u8 = 11;
const Q_DRAIN_TRACE: u8 = 12;
const Q_SHUTDOWN: u8 = 13;
const Q_TRANSPORT_STATS: u8 = 14;
const Q_FAULT_STATS: u8 = 15;
const Q_PARTITION: u8 = 16;
const Q_SET_SKEW: u8 = 17;
const Q_RESTART_STATS: u8 = 18;

impl Wire for CtrlRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            CtrlRequest::Ping => w.put_u8(Q_PING),
            CtrlRequest::Peers { peers } => {
                w.put_u8(Q_PEERS);
                w.put_seq(peers);
            }
            CtrlRequest::Begin => w.put_u8(Q_BEGIN),
            CtrlRequest::Read {
                tid,
                server,
                object,
            } => {
                w.put_u8(Q_READ);
                w.put(tid);
                w.put(server);
                w.put(object);
            }
            CtrlRequest::Write {
                tid,
                server,
                object,
                value,
            } => {
                w.put_u8(Q_WRITE);
                w.put(tid);
                w.put(server);
                w.put(object);
                w.put_bytes(value);
            }
            CtrlRequest::Commit {
                tid,
                nonblocking,
                participants,
            } => {
                w.put_u8(Q_COMMIT);
                w.put(tid);
                w.put_bool(*nonblocking);
                w.put_seq(participants);
            }
            CtrlRequest::Abort { tid, participants } => {
                w.put_u8(Q_ABORT);
                w.put(tid);
                w.put_seq(participants);
            }
            CtrlRequest::CommittedValue { server, object } => {
                w.put_u8(Q_COMMITTED_VALUE);
                w.put(server);
                w.put(object);
            }
            CtrlRequest::DebugState => w.put_u8(Q_DEBUG_STATE),
            CtrlRequest::ArmCrash { point } => {
                w.put_u8(Q_ARM_CRASH);
                w.put_u8(point.to_wire());
            }
            CtrlRequest::Heal => w.put_u8(Q_HEAL),
            CtrlRequest::DrainTrace => w.put_u8(Q_DRAIN_TRACE),
            CtrlRequest::Shutdown => w.put_u8(Q_SHUTDOWN),
            CtrlRequest::TransportStats => w.put_u8(Q_TRANSPORT_STATS),
            CtrlRequest::FaultStats => w.put_u8(Q_FAULT_STATS),
            CtrlRequest::Partition { a, b } => {
                w.put_u8(Q_PARTITION);
                w.put_seq(a);
                w.put_seq(b);
            }
            CtrlRequest::SetSkew { site, per_mille } => {
                w.put_u8(Q_SET_SKEW);
                w.put(site);
                w.put_u32(*per_mille);
            }
            CtrlRequest::RestartStats => w.put_u8(Q_RESTART_STATS),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            Q_PING => CtrlRequest::Ping,
            Q_PEERS => CtrlRequest::Peers {
                peers: r.get_seq()?,
            },
            Q_BEGIN => CtrlRequest::Begin,
            Q_READ => CtrlRequest::Read {
                tid: r.get()?,
                server: r.get()?,
                object: r.get()?,
            },
            Q_WRITE => CtrlRequest::Write {
                tid: r.get()?,
                server: r.get()?,
                object: r.get()?,
                value: r.get_bytes()?,
            },
            Q_COMMIT => CtrlRequest::Commit {
                tid: r.get()?,
                nonblocking: r.get_bool()?,
                participants: r.get_seq()?,
            },
            Q_ABORT => CtrlRequest::Abort {
                tid: r.get()?,
                participants: r.get_seq()?,
            },
            Q_COMMITTED_VALUE => CtrlRequest::CommittedValue {
                server: r.get()?,
                object: r.get()?,
            },
            Q_DEBUG_STATE => CtrlRequest::DebugState,
            Q_ARM_CRASH => {
                let raw = r.get_u8()?;
                let point = CrashPoint::from_wire(raw)
                    .ok_or_else(|| CamelotError::Codec(format!("bad crash point {raw}")))?;
                CtrlRequest::ArmCrash { point }
            }
            Q_HEAL => CtrlRequest::Heal,
            Q_DRAIN_TRACE => CtrlRequest::DrainTrace,
            Q_SHUTDOWN => CtrlRequest::Shutdown,
            Q_TRANSPORT_STATS => CtrlRequest::TransportStats,
            Q_FAULT_STATS => CtrlRequest::FaultStats,
            Q_PARTITION => CtrlRequest::Partition {
                a: r.get_seq()?,
                b: r.get_seq()?,
            },
            Q_SET_SKEW => CtrlRequest::SetSkew {
                site: r.get()?,
                per_mille: r.get_u32()?,
            },
            Q_RESTART_STATS => CtrlRequest::RestartStats,
            v => return Err(CamelotError::Codec(format!("unknown ctrl request {v}"))),
        })
    }
}

/// A site process's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlReply {
    Ok,
    Pong {
        site: SiteId,
    },
    Began {
        tid: Tid,
    },
    Value {
        value: Vec<u8>,
    },
    /// Commit outcome: `true` is committed, `false` aborted.
    Outcome {
        committed: bool,
    },
    State {
        dump: String,
    },
    Trace {
        jsonl: String,
    },
    /// A typed error rendered for transport; the call provably or
    /// possibly did not take effect (the detail says which).
    Err {
        detail: String,
    },
    /// Snapshot of the data-plane transport's outbound counters.
    Transport {
        stats: TransportStats,
    },
    /// Snapshot of the site's fault-injection counters.
    Fault {
        stats: FaultStats,
    },
    /// Per-site restart counts from the supervisor.
    Restarts {
        counts: Vec<RestartEntry>,
    },
}

/// One site's restart count, as reported by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartEntry {
    pub site: SiteId,
    pub restarts: u32,
}

impl Wire for RestartEntry {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.site);
        w.put_u32(self.restarts);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(RestartEntry {
            site: r.get()?,
            restarts: r.get_u32()?,
        })
    }
}

const R_OK: u8 = 1;
const R_PONG: u8 = 2;
const R_BEGAN: u8 = 3;
const R_VALUE: u8 = 4;
const R_OUTCOME: u8 = 5;
const R_STATE: u8 = 6;
const R_TRACE: u8 = 7;
const R_ERR: u8 = 8;
const R_TRANSPORT: u8 = 9;
const R_FAULT: u8 = 10;
const R_RESTARTS: u8 = 11;

impl Wire for CtrlReply {
    fn encode(&self, w: &mut Writer) {
        match self {
            CtrlReply::Ok => w.put_u8(R_OK),
            CtrlReply::Pong { site } => {
                w.put_u8(R_PONG);
                w.put(site);
            }
            CtrlReply::Began { tid } => {
                w.put_u8(R_BEGAN);
                w.put(tid);
            }
            CtrlReply::Value { value } => {
                w.put_u8(R_VALUE);
                w.put_bytes(value);
            }
            CtrlReply::Outcome { committed } => {
                w.put_u8(R_OUTCOME);
                w.put_bool(*committed);
            }
            CtrlReply::State { dump } => {
                w.put_u8(R_STATE);
                w.put_str(dump);
            }
            CtrlReply::Trace { jsonl } => {
                w.put_u8(R_TRACE);
                w.put_str(jsonl);
            }
            CtrlReply::Err { detail } => {
                w.put_u8(R_ERR);
                w.put_str(detail);
            }
            CtrlReply::Transport { stats } => {
                w.put_u8(R_TRANSPORT);
                w.put(stats);
            }
            CtrlReply::Fault { stats } => {
                w.put_u8(R_FAULT);
                w.put(stats);
            }
            CtrlReply::Restarts { counts } => {
                w.put_u8(R_RESTARTS);
                w.put_seq(counts);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            R_OK => CtrlReply::Ok,
            R_PONG => CtrlReply::Pong { site: r.get()? },
            R_BEGAN => CtrlReply::Began { tid: r.get()? },
            R_VALUE => CtrlReply::Value {
                value: r.get_bytes()?,
            },
            R_OUTCOME => CtrlReply::Outcome {
                committed: r.get_bool()?,
            },
            R_STATE => CtrlReply::State { dump: r.get_str()? },
            R_TRACE => CtrlReply::Trace {
                jsonl: r.get_str()?,
            },
            R_ERR => CtrlReply::Err {
                detail: r.get_str()?,
            },
            R_TRANSPORT => CtrlReply::Transport { stats: r.get()? },
            R_FAULT => CtrlReply::Fault { stats: r.get()? },
            R_RESTARTS => CtrlReply::Restarts {
                counts: r.get_seq()?,
            },
            v => return Err(CamelotError::Codec(format!("unknown ctrl reply {v}"))),
        })
    }
}

/// Writes one wire value as a frame on a stream.
pub fn write_framed<T: Wire>(stream: &mut TcpStream, value: &T) -> std::io::Result<()> {
    stream.write_all(&encode_frame(&value.to_bytes()))
}

/// Reads the next framed wire value off a stream, feeding `dec`.
/// `Ok(None)` means the peer closed the stream cleanly between frames.
pub fn read_framed<T: Wire>(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Result<Option<T>> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(payload) = dec.next_frame()? {
            return T::from_bytes(&payload).map(Some);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if dec.buffered() == 0 {
                    return Ok(None);
                }
                return Err(CamelotError::Codec("ctrl stream ended mid-frame".into()));
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e) => return Err(CamelotError::Log(format!("ctrl read: {e}"))),
        }
    }
}

/// A synchronous client of one site process's control socket.
pub struct CtrlClient {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl CtrlClient {
    /// Connects, retrying briefly — the site process prints its
    /// handshake before it starts accepting, so the first connect can
    /// race the listener.
    pub fn connect(addr: SocketAddr) -> std::io::Result<CtrlClient> {
        let mut last = None;
        for _ in 0..50 {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    return Ok(CtrlClient {
                        stream,
                        dec: FrameDecoder::new(),
                    });
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(StdDuration::from_millis(20));
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("connect failed")))
    }

    /// One request/reply round trip.
    pub fn call(&mut self, req: &CtrlRequest) -> Result<CtrlReply> {
        write_framed(&mut self.stream, req)
            .map_err(|e| CamelotError::Log(format!("ctrl write: {e}")))?;
        read_framed(&mut self.stream, &mut self.dec)?
            .ok_or_else(|| CamelotError::Log("ctrl peer closed".into()))
    }

    /// Calls and converts a [`CtrlReply::Err`] into a typed error.
    fn call_ok(&mut self, req: &CtrlRequest) -> Result<CtrlReply> {
        match self.call(req)? {
            CtrlReply::Err { detail } => Err(CamelotError::Log(detail)),
            other => Ok(other),
        }
    }

    pub fn ping(&mut self) -> Result<SiteId> {
        match self.call_ok(&CtrlRequest::Ping)? {
            CtrlReply::Pong { site } => Ok(site),
            other => Err(unexpected(other)),
        }
    }

    pub fn set_peers(&mut self, peers: Vec<PeerEntry>) -> Result<()> {
        match self.call_ok(&CtrlRequest::Peers { peers })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn begin(&mut self) -> Result<Tid> {
        match self.call_ok(&CtrlRequest::Begin)? {
            CtrlReply::Began { tid } => Ok(tid),
            other => Err(unexpected(other)),
        }
    }

    pub fn read(&mut self, tid: &Tid, server: ServerId, object: ObjectId) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::Read {
            tid: tid.clone(),
            server,
            object,
        })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    pub fn write(
        &mut self,
        tid: &Tid,
        server: ServerId,
        object: ObjectId,
        value: Vec<u8>,
    ) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::Write {
            tid: tid.clone(),
            server,
            object,
            value,
        })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    /// Returns true when the transaction committed.
    pub fn commit(
        &mut self,
        tid: &Tid,
        nonblocking: bool,
        participants: Vec<SiteId>,
    ) -> Result<bool> {
        match self.call_ok(&CtrlRequest::Commit {
            tid: tid.clone(),
            nonblocking,
            participants,
        })? {
            CtrlReply::Outcome { committed } => Ok(committed),
            other => Err(unexpected(other)),
        }
    }

    pub fn abort(&mut self, tid: &Tid, participants: Vec<SiteId>) -> Result<()> {
        match self.call_ok(&CtrlRequest::Abort {
            tid: tid.clone(),
            participants,
        })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn committed_value(&mut self, server: ServerId, object: ObjectId) -> Result<Vec<u8>> {
        match self.call_ok(&CtrlRequest::CommittedValue { server, object })? {
            CtrlReply::Value { value } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    pub fn debug_state(&mut self) -> Result<String> {
        match self.call_ok(&CtrlRequest::DebugState)? {
            CtrlReply::State { dump } => Ok(dump),
            other => Err(unexpected(other)),
        }
    }

    pub fn arm_crash(&mut self, point: CrashPoint) -> Result<()> {
        match self.call_ok(&CtrlRequest::ArmCrash { point })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn heal(&mut self) -> Result<()> {
        match self.call_ok(&CtrlRequest::Heal)? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn drain_trace(&mut self) -> Result<String> {
        match self.call_ok(&CtrlRequest::DrainTrace)? {
            CtrlReply::Trace { jsonl } => Ok(jsonl),
            other => Err(unexpected(other)),
        }
    }

    pub fn transport_stats(&mut self) -> Result<TransportStats> {
        match self.call_ok(&CtrlRequest::TransportStats)? {
            CtrlReply::Transport { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    pub fn fault_stats(&mut self) -> Result<FaultStats> {
        match self.call_ok(&CtrlRequest::FaultStats)? {
            CtrlReply::Fault { stats } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    pub fn partition(&mut self, a: &[SiteId], b: &[SiteId]) -> Result<()> {
        match self.call_ok(&CtrlRequest::Partition {
            a: a.to_vec(),
            b: b.to_vec(),
        })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn set_skew(&mut self, site: SiteId, per_mille: u32) -> Result<()> {
        match self.call_ok(&CtrlRequest::SetSkew { site, per_mille })? {
            CtrlReply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    pub fn restart_stats(&mut self) -> Result<Vec<RestartEntry>> {
        match self.call_ok(&CtrlRequest::RestartStats)? {
            CtrlReply::Restarts { counts } => Ok(counts),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the process to exit; the closed stream is the expected
    /// outcome, so transport errors after the request are swallowed.
    pub fn shutdown(&mut self) {
        let _ = self.call(&CtrlRequest::Shutdown);
    }
}

fn unexpected(reply: CtrlReply) -> CamelotError {
    CamelotError::Internal(format!("unexpected ctrl reply {reply:?}"))
}

/// The `ready` handshake a `camelot-site` process prints on stdout
/// once both sockets are bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    pub site: SiteId,
    pub data: SocketAddr,
    pub ctrl: SocketAddr,
}

impl Handshake {
    /// Renders the stdout line: `ready site=1 data=ADDR ctrl=ADDR`.
    pub fn render(&self) -> String {
        format!(
            "ready site={} data={} ctrl={}",
            self.site.0, self.data, self.ctrl
        )
    }

    /// Parses a handshake line (ignores unrelated lines by returning
    /// `None`).
    pub fn parse(line: &str) -> Option<Handshake> {
        let line = line.trim();
        let rest = line.strip_prefix("ready ")?;
        let mut site = None;
        let mut data = None;
        let mut ctrl = None;
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("site=") {
                site = v.parse::<u32>().ok().map(SiteId);
            } else if let Some(v) = tok.strip_prefix("data=") {
                data = v.parse::<SocketAddr>().ok();
            } else if let Some(v) = tok.strip_prefix("ctrl=") {
                ctrl = v.parse::<SocketAddr>().ok();
            }
        }
        Some(Handshake {
            site: site?,
            data: data?,
            ctrl: ctrl?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_types::FamilyId;

    fn tid() -> Tid {
        Tid::top_level(FamilyId {
            origin: SiteId(2),
            seq: 7,
        })
    }

    fn all_requests() -> Vec<CtrlRequest> {
        vec![
            CtrlRequest::Ping,
            CtrlRequest::Peers {
                peers: vec![
                    PeerEntry {
                        site: SiteId(1),
                        addr: "127.0.0.1:4001".into(),
                    },
                    PeerEntry {
                        site: SiteId(2),
                        addr: "127.0.0.1:4002".into(),
                    },
                ],
            },
            CtrlRequest::Begin,
            CtrlRequest::Read {
                tid: tid(),
                server: ServerId(1),
                object: ObjectId(9),
            },
            CtrlRequest::Write {
                tid: tid(),
                server: ServerId(1),
                object: ObjectId(9),
                value: vec![1, 2, 3],
            },
            CtrlRequest::Commit {
                tid: tid(),
                nonblocking: true,
                participants: vec![SiteId(2), SiteId(3)],
            },
            CtrlRequest::Abort {
                tid: tid(),
                participants: vec![SiteId(3)],
            },
            CtrlRequest::CommittedValue {
                server: ServerId(1),
                object: ObjectId(9),
            },
            CtrlRequest::DebugState,
            CtrlRequest::ArmCrash {
                point: CrashPoint::PostForcePreSend,
            },
            CtrlRequest::Heal,
            CtrlRequest::DrainTrace,
            CtrlRequest::Shutdown,
            CtrlRequest::TransportStats,
            CtrlRequest::FaultStats,
            CtrlRequest::Partition {
                a: vec![SiteId(1), SiteId(2)],
                b: vec![SiteId(3)],
            },
            CtrlRequest::SetSkew {
                site: SiteId(2),
                per_mille: 1500,
            },
            CtrlRequest::RestartStats,
        ]
    }

    fn all_replies() -> Vec<CtrlReply> {
        vec![
            CtrlReply::Ok,
            CtrlReply::Pong { site: SiteId(3) },
            CtrlReply::Began { tid: tid() },
            CtrlReply::Value { value: vec![7; 9] },
            CtrlReply::Outcome { committed: true },
            CtrlReply::Outcome { committed: false },
            CtrlReply::State {
                dump: "s1 engine: f live".into(),
            },
            CtrlReply::Trace {
                jsonl: "{\"kind\":\"crash\"}\n".into(),
            },
            CtrlReply::Err {
                detail: "timeout".into(),
            },
            CtrlReply::Transport {
                stats: TransportStats {
                    sends: 10,
                    send_failures: 1,
                    connects: 3,
                    connect_failures: 2,
                    enqueued: 11,
                    queue_drops: 4,
                    queue_depth: 5,
                    max_queue_depth: 9,
                },
            },
            CtrlReply::Fault {
                stats: FaultStats {
                    drops: 1,
                    delays: 2,
                    duplicates: 3,
                    crashes: 4,
                    partition_drops: 5,
                    skewed_timers: 6,
                },
            },
            CtrlReply::Restarts {
                counts: vec![
                    RestartEntry {
                        site: SiteId(1),
                        restarts: 0,
                    },
                    RestartEntry {
                        site: SiteId(2),
                        restarts: 3,
                    },
                ],
            },
        ]
    }

    #[test]
    fn every_request_roundtrips() {
        for q in all_requests() {
            let b = q.to_bytes();
            assert_eq!(CtrlRequest::from_bytes(&b).unwrap(), q, "{q:?}");
        }
    }

    #[test]
    fn every_reply_roundtrips() {
        for r in all_replies() {
            let b = r.to_bytes();
            assert_eq!(CtrlReply::from_bytes(&b).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn truncated_requests_fail_cleanly() {
        for q in all_requests() {
            let b = q.to_bytes();
            for cut in 0..b.len() {
                assert!(CtrlRequest::from_bytes(&b[..cut]).is_err());
            }
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(CtrlRequest::from_bytes(&[0]).is_err());
        assert!(CtrlRequest::from_bytes(&[99]).is_err());
        assert!(CtrlReply::from_bytes(&[99]).is_err());
        // Bad crash-point byte inside an otherwise valid ArmCrash.
        assert!(CtrlRequest::from_bytes(&[super::Q_ARM_CRASH, 77]).is_err());
    }

    #[test]
    fn handshake_roundtrips_and_rejects_noise() {
        let h = Handshake {
            site: SiteId(3),
            data: "127.0.0.1:5001".parse().unwrap(),
            ctrl: "127.0.0.1:5002".parse().unwrap(),
        };
        assert_eq!(Handshake::parse(&h.render()), Some(h.clone()));
        assert_eq!(Handshake::parse("starting up..."), None);
        assert_eq!(Handshake::parse("ready site=x data=y ctrl=z"), None);
    }
}
