//! Spawning and wiring `camelot-site` processes from sibling binaries.
//!
//! `camelot-launch` and `camelot-sockbench` both need the same
//! choreography: find the `camelot-site` binary next to the running
//! executable, spawn one process per site, read each child's `ready`
//! handshake off stdout, connect a control client, and distribute the
//! data-plane port map. This module is that choreography as a
//! library. (The `socket_e2e` integration tests keep their own copy
//! built on `CARGO_BIN_EXE_camelot-site`, which only exists for
//! tests.)

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use camelot_types::SiteId;

use crate::ctrl::{CtrlClient, Handshake, PeerEntry};

/// One running `camelot-site` child with its control connection.
pub struct SiteProc {
    pub id: SiteId,
    pub child: Child,
    pub handshake: Handshake,
    pub ctrl: CtrlClient,
}

/// How to spawn one site process.
pub struct SpawnSpec<'a> {
    /// Path to the `camelot-site` binary.
    pub bin: &'a Path,
    pub site: SiteId,
    /// `udp` or `tcp`.
    pub transport: &'a str,
    /// WAL directory for this site; `None` uses a fresh temp dir.
    pub log_dir: Option<&'a Path>,
    /// Use the fast engine timer profile (`--fast`); benchmarks and
    /// tests want this, long-lived clusters may not.
    pub fast: bool,
    /// Extra raw arguments (fault injection flags, trace output, ...).
    pub extra: &'a [String],
}

/// Locates the `camelot-site` binary next to the current executable.
/// `CAMELOT_SITE_BIN` overrides the lookup (useful when the caller is
/// not installed alongside the site binary).
pub fn sibling_site_bin() -> std::io::Result<PathBuf> {
    if let Ok(p) = std::env::var("CAMELOT_SITE_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()?;
    let dir = exe
        .parent()
        .ok_or_else(|| std::io::Error::other("executable has no parent directory"))?;
    let bin = dir.join("camelot-site");
    if !bin.exists() {
        return Err(std::io::Error::other(format!(
            "camelot-site not found at {} (build it with `cargo build -p camelot-node` \
             or point CAMELOT_SITE_BIN at it)",
            bin.display()
        )));
    }
    Ok(bin)
}

impl SiteProc {
    /// Spawns one site process and completes its stdout handshake.
    pub fn spawn(spec: &SpawnSpec<'_>) -> std::io::Result<SiteProc> {
        let mut cmd = Command::new(spec.bin);
        cmd.arg("--site")
            .arg(spec.site.0.to_string())
            .arg("--transport")
            .arg(spec.transport)
            .args(spec.extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if spec.fast {
            cmd.arg("--fast");
        }
        if let Some(dir) = spec.log_dir {
            cmd.arg("--log-dir")
                .arg(dir.join(format!("site-{}", spec.site.0)));
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let handshake = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(h) = Handshake::parse(&line) {
                        break h;
                    }
                }
                _ => {
                    let _ = child.kill();
                    return Err(std::io::Error::other(format!(
                        "site {} exited before its handshake",
                        spec.site.0
                    )));
                }
            }
        };
        let ctrl = CtrlClient::connect(handshake.ctrl)?;
        Ok(SiteProc {
            id: spec.site,
            child,
            handshake,
            ctrl,
        })
    }

    /// Asks the process to exit cleanly and reaps it.
    pub fn shutdown(mut self) {
        self.ctrl.shutdown();
        let _ = self.child.wait();
    }

    /// Kills the process without ceremony (bench teardown between
    /// measurement points).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends the full data-plane address map to every site.
pub fn distribute_peers(sites: &mut [SiteProc]) -> camelot_types::Result<()> {
    let peers: Vec<PeerEntry> = sites
        .iter()
        .map(|s| PeerEntry {
            site: s.id,
            addr: s.handshake.data.to_string(),
        })
        .collect();
    for s in sites.iter_mut() {
        s.ctrl.set_peers(peers.clone())?;
    }
    Ok(())
}

/// Polls every site's protocol state until all report empty (every
/// transaction resolved, applied, and forgotten everywhere) or the
/// deadline passes.
pub fn wait_quiesce(sites: &mut [SiteProc], deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let busy = sites
            .iter_mut()
            .any(|s| s.ctrl.debug_state().map(|d| !d.is_empty()).unwrap_or(false));
        if !busy {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}
