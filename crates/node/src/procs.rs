//! Spawning and wiring `camelot-site` processes from sibling binaries.
//!
//! `camelot-launch` and `camelot-sockbench` both need the same
//! choreography: find the `camelot-site` binary next to the running
//! executable, spawn one process per site, read each child's `ready`
//! handshake off stdout, connect a control client, and distribute the
//! data-plane port map. This module is that choreography as a
//! library. (The `socket_e2e` integration tests keep their own copy
//! built on `CARGO_BIN_EXE_camelot-site`, which only exists for
//! tests.)

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use camelot_types::SiteId;

use crate::ctrl::{CtrlClient, Handshake, PeerEntry};

/// How many stderr lines a [`StderrTail`] retains per site.
const STDERR_TAIL_LINES: usize = 40;

/// Bounded ring of a child's most recent stderr lines. A reader
/// thread echoes every line through to our own stderr (so nothing is
/// hidden) while keeping the tail for post-mortem reporting — when a
/// site burns its restart budget, the supervisor prints these.
#[derive(Clone, Default)]
pub struct StderrTail {
    ring: Arc<Mutex<VecDeque<String>>>,
}

impl StderrTail {
    fn push(&self, line: String) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == STDERR_TAIL_LINES {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

/// One running `camelot-site` child with its control connection.
pub struct SiteProc {
    pub id: SiteId,
    pub child: Child,
    pub handshake: Handshake,
    pub ctrl: CtrlClient,
    pub stderr_tail: StderrTail,
}

/// How to spawn one site process.
pub struct SpawnSpec<'a> {
    /// Path to the `camelot-site` binary.
    pub bin: &'a Path,
    pub site: SiteId,
    /// `udp` or `tcp`.
    pub transport: &'a str,
    /// WAL directory for this site; `None` uses a fresh temp dir.
    pub log_dir: Option<&'a Path>,
    /// Use the fast engine timer profile (`--fast`); benchmarks and
    /// tests want this, long-lived clusters may not.
    pub fast: bool,
    /// Extra raw arguments (fault injection flags, trace output, ...).
    pub extra: &'a [String],
}

/// Locates the `camelot-site` binary next to the current executable.
/// `CAMELOT_SITE_BIN` overrides the lookup (useful when the caller is
/// not installed alongside the site binary).
pub fn sibling_site_bin() -> std::io::Result<PathBuf> {
    if let Ok(p) = std::env::var("CAMELOT_SITE_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()?;
    let dir = exe
        .parent()
        .ok_or_else(|| std::io::Error::other("executable has no parent directory"))?;
    let bin = dir.join("camelot-site");
    if !bin.exists() {
        return Err(std::io::Error::other(format!(
            "camelot-site not found at {} (build it with `cargo build -p camelot-node` \
             or point CAMELOT_SITE_BIN at it)",
            bin.display()
        )));
    }
    Ok(bin)
}

impl SiteProc {
    /// Spawns one site process and completes its stdout handshake.
    pub fn spawn(spec: &SpawnSpec<'_>) -> std::io::Result<SiteProc> {
        let mut cmd = Command::new(spec.bin);
        cmd.arg("--site")
            .arg(spec.site.0.to_string())
            .arg("--transport")
            .arg(spec.transport)
            .args(spec.extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if spec.fast {
            cmd.arg("--fast");
        }
        if let Some(dir) = spec.log_dir {
            cmd.arg("--log-dir")
                .arg(dir.join(format!("site-{}", spec.site.0)));
        }
        let mut child = cmd.spawn()?;
        let stderr_tail = StderrTail::default();
        {
            let stderr = child.stderr.take().expect("piped stderr");
            let tail = stderr_tail.clone();
            let site = spec.site;
            std::thread::spawn(move || {
                for line in BufReader::new(stderr).lines() {
                    let Ok(line) = line else { break };
                    eprintln!("site {}: {line}", site.0);
                    tail.push(line);
                }
            });
        }
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let handshake = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(h) = Handshake::parse(&line) {
                        break h;
                    }
                }
                _ => {
                    let _ = child.kill();
                    return Err(std::io::Error::other(format!(
                        "site {} exited before its handshake",
                        spec.site.0
                    )));
                }
            }
        };
        let ctrl = CtrlClient::connect(handshake.ctrl)?;
        Ok(SiteProc {
            id: spec.site,
            child,
            handshake,
            ctrl,
            stderr_tail,
        })
    }

    /// Asks the process to exit cleanly and reaps it.
    pub fn shutdown(mut self) {
        self.ctrl.shutdown();
        let _ = self.child.wait();
    }

    /// Kills the process without ceremony (bench teardown between
    /// measurement points).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends the full data-plane address map to every site.
pub fn distribute_peers(sites: &mut [SiteProc]) -> camelot_types::Result<()> {
    let peers: Vec<PeerEntry> = sites
        .iter()
        .map(|s| PeerEntry {
            site: s.id,
            addr: s.handshake.data.to_string(),
        })
        .collect();
    for s in sites.iter_mut() {
        s.ctrl.set_peers(peers.clone())?;
    }
    Ok(())
}

/// Polls every site's protocol state until all report empty (every
/// transaction resolved, applied, and forgotten everywhere) or the
/// deadline passes.
pub fn wait_quiesce(sites: &mut [SiteProc], deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let busy = sites
            .iter_mut()
            .any(|s| s.ctrl.debug_state().map(|d| !d.is_empty()).unwrap_or(false));
        if !busy {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// How a [`Supervisor`] keeps a cluster of site processes alive.
pub struct SupervisorConfig {
    /// Path to the `camelot-site` binary.
    pub bin: PathBuf,
    /// Number of sites (ids `1..=sites`).
    pub sites: u32,
    /// `udp` or `tcp`.
    pub transport: String,
    /// WAL root; each site gets `site-N` under it. Required: a
    /// respawned site must recover from the incarnation it lost.
    pub log_dir: PathBuf,
    /// Use the fast engine timer profile.
    pub fast: bool,
    /// Extra raw `camelot-site` arguments.
    pub extra: Vec<String>,
    /// First restart delay after a site death.
    pub backoff_base: Duration,
    /// Ceiling for the doubled restart delay.
    pub backoff_cap: Duration,
    /// How many times one site may be restarted before the supervisor
    /// gives up on it (marks it failed and stops respawning).
    pub restart_budget: u32,
}

impl SupervisorConfig {
    pub fn new(bin: PathBuf, sites: u32, transport: &str, log_dir: PathBuf) -> SupervisorConfig {
        SupervisorConfig {
            bin,
            sites,
            transport: transport.to_string(),
            log_dir,
            fast: true,
            extra: Vec::new(),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            restart_budget: 5,
        }
    }
}

/// Shared address board: the last-known control and data addresses of
/// every site, plus a generation counter bumped on each membership
/// change. Ports are OS-assigned, so they change on every respawn —
/// workers holding their own control connections watch the generation
/// and re-resolve when it moves.
#[derive(Default)]
pub struct AddrBoard {
    generation: std::sync::atomic::AtomicU64,
    addrs: Mutex<std::collections::HashMap<SiteId, Handshake>>,
}

impl AddrBoard {
    /// Bumped on every spawn/respawn; compare against a cached value
    /// to decide whether a held control connection may be stale.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The site's last-known control address.
    pub fn ctrl_addr(&self, site: SiteId) -> Option<std::net::SocketAddr> {
        self.addrs.lock().unwrap().get(&site).map(|h| h.ctrl)
    }

    fn publish(&self, h: &Handshake) {
        self.addrs.lock().unwrap().insert(h.site, h.clone());
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn peer_entries(&self) -> Vec<PeerEntry> {
        let mut peers: Vec<PeerEntry> = self
            .addrs
            .lock()
            .unwrap()
            .values()
            .map(|h| PeerEntry {
                site: h.site,
                addr: h.data.to_string(),
            })
            .collect();
        peers.sort_by_key(|p| p.site.0);
        peers
    }
}

/// One site's place in the supervisor.
enum Slot {
    /// Running (as far as the last `poll` observed).
    Up(SiteProc),
    /// Died; a respawn is scheduled.
    Waiting { at: Instant },
    /// Burned its restart budget; the supervisor gave up on it.
    Failed { status: String },
}

/// A failed site's post-mortem, for the launcher's exit report.
#[derive(Debug)]
pub struct FailedSite {
    pub site: SiteId,
    /// The exit status of the death that burned the budget.
    pub status: String,
    /// Its last captured stderr lines, oldest first.
    pub stderr_tail: Vec<String>,
}

/// Keeps a cluster of `camelot-site` processes alive: watches for
/// exits, respawns crashed sites on the same WAL directory (so
/// recovery rebuilds them) with capped exponential backoff, and
/// re-distributes the data-plane address map after every respawn so
/// peers reconnect to the new incarnation's ports.
///
/// The supervisor is poll-driven: callers interleave [`poll`] with
/// their own work (the launch and soak drivers do this between
/// transaction batches). It also runs a small control listener of its
/// own answering [`CtrlRequest::RestartStats`], so external harnesses
/// can read per-site restart counts over the same wire protocol the
/// sites speak.
///
/// [`poll`]: Supervisor::poll
/// [`CtrlRequest::RestartStats`]: crate::ctrl::CtrlRequest::RestartStats
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Index `i` holds site `i + 1`.
    slots: Vec<Slot>,
    backoffs: Vec<camelot_net::Backoff>,
    /// Last-known stderr tail per site; survives the death of the
    /// `SiteProc` that produced it.
    tails: Vec<StderrTail>,
    /// Respawns performed (or attempted) per site.
    restarts: Arc<Mutex<Vec<u32>>>,
    board: Arc<AddrBoard>,
    ctrl_addr: std::net::SocketAddr,
}

impl Supervisor {
    /// Spawns all sites, distributes the initial peer map, and starts
    /// the supervisor's own control listener.
    pub fn start(cfg: SupervisorConfig) -> std::io::Result<Supervisor> {
        let board = Arc::new(AddrBoard::default());
        let restarts = Arc::new(Mutex::new(vec![0u32; cfg.sites as usize]));
        let mut slots = Vec::with_capacity(cfg.sites as usize);
        let mut backoffs = Vec::with_capacity(cfg.sites as usize);
        let mut tails = Vec::with_capacity(cfg.sites as usize);
        for id in 1..=cfg.sites {
            let proc = SiteProc::spawn(&spawn_spec(&cfg, SiteId(id)))?;
            board.publish(&proc.handshake);
            tails.push(proc.stderr_tail.clone());
            slots.push(Slot::Up(proc));
            backoffs.push(camelot_net::Backoff::new(cfg.backoff_base, cfg.backoff_cap));
        }
        let ctrl_addr = serve_supervisor_ctrl(Arc::clone(&restarts))?;
        let mut sup = Supervisor {
            cfg,
            slots,
            backoffs,
            tails,
            restarts,
            board,
            ctrl_addr,
        };
        sup.redistribute_peers();
        Ok(sup)
    }

    /// The supervisor's own control address (answers `RestartStats`).
    pub fn ctrl_addr(&self) -> std::net::SocketAddr {
        self.ctrl_addr
    }

    /// The shared address board for workers that hold their own
    /// control connections.
    pub fn board(&self) -> Arc<AddrBoard> {
        Arc::clone(&self.board)
    }

    /// One supervision step: reap exited sites, schedule their
    /// respawns, and respawn those whose backoff has elapsed. Returns
    /// `true` if membership changed (a death was observed or a site
    /// came back).
    pub fn poll(&mut self) -> bool {
        let mut changed = false;
        for i in 0..self.slots.len() {
            let site = SiteId(i as u32 + 1);
            match &mut self.slots[i] {
                Slot::Up(proc) => {
                    let status = match proc.child.try_wait() {
                        Ok(Some(status)) => status,
                        Ok(None) => continue,
                        Err(e) => {
                            eprintln!("supervisor: try_wait site {}: {e}", site.0);
                            continue;
                        }
                    };
                    changed = true;
                    self.tails[i] = proc.stderr_tail.clone();
                    let spent = self.restarts.lock().unwrap()[i];
                    if spent >= self.cfg.restart_budget {
                        eprintln!(
                            "supervisor: site {} died ({status}) after {spent} restarts; \
                             budget exhausted, giving up",
                            site.0
                        );
                        self.slots[i] = Slot::Failed {
                            status: status.to_string(),
                        };
                        continue;
                    }
                    let delay = self.backoffs[i].failure();
                    eprintln!(
                        "supervisor: site {} died ({status}); respawning in {}ms \
                         (restart {}/{})",
                        site.0,
                        delay.as_millis(),
                        spent + 1,
                        self.cfg.restart_budget
                    );
                    self.slots[i] = Slot::Waiting {
                        at: Instant::now() + delay,
                    };
                }
                Slot::Waiting { at } => {
                    if Instant::now() < *at {
                        continue;
                    }
                    self.restarts.lock().unwrap()[i] += 1;
                    match SiteProc::spawn(&spawn_spec(&self.cfg, site)) {
                        Ok(proc) => {
                            changed = true;
                            // Same --log-dir: the new process already
                            // ran WAL recovery before its handshake.
                            self.board.publish(&proc.handshake);
                            self.tails[i] = proc.stderr_tail.clone();
                            self.slots[i] = Slot::Up(proc);
                            self.redistribute_peers();
                            eprintln!("supervisor: site {} back up", site.0);
                        }
                        Err(e) => {
                            eprintln!("supervisor: respawn site {} failed: {e}", site.0);
                            self.slots[i] = Slot::Waiting {
                                at: Instant::now() + self.backoffs[i].failure(),
                            };
                        }
                    }
                }
                Slot::Failed { .. } => {}
            }
        }
        changed
    }

    /// The control client of an up site.
    pub fn ctrl(&mut self, site: SiteId) -> Option<&mut CtrlClient> {
        match self.slots.get_mut(site.0 as usize - 1)? {
            Slot::Up(proc) => Some(&mut proc.ctrl),
            _ => None,
        }
    }

    /// Kills a site's process outright (fault injection). The next
    /// `poll` observes the death and schedules the respawn.
    pub fn kill_site(&mut self, site: SiteId) -> bool {
        match self.slots.get_mut(site.0 as usize - 1) {
            Some(Slot::Up(proc)) => {
                let _ = proc.child.kill();
                true
            }
            _ => false,
        }
    }

    /// True when every site is up (does not poll; call `poll` first).
    pub fn all_up(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, Slot::Up(_)))
    }

    /// Polls until every site is up or the deadline passes.
    pub fn wait_all_up(&mut self, deadline: Duration) -> bool {
        let start = Instant::now();
        loop {
            self.poll();
            if self.all_up() {
                return true;
            }
            if start.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Respawns performed per site, in site order.
    pub fn restart_counts(&self) -> Vec<crate::ctrl::RestartEntry> {
        self.restarts
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, &restarts)| crate::ctrl::RestartEntry {
                site: SiteId(i as u32 + 1),
                restarts,
            })
            .collect()
    }

    /// Post-mortems of sites the supervisor has given up on.
    pub fn failed_sites(&self) -> Vec<FailedSite> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Failed { status } => Some(FailedSite {
                    site: SiteId(i as u32 + 1),
                    status: status.clone(),
                    stderr_tail: self.tails[i].lines(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Cleanly shuts down every up site and reaps the rest.
    pub fn shutdown(self) {
        for slot in self.slots {
            if let Slot::Up(proc) = slot {
                proc.shutdown();
            }
        }
    }
}

fn spawn_spec<'a>(cfg: &'a SupervisorConfig, site: SiteId) -> SpawnSpec<'a> {
    SpawnSpec {
        bin: &cfg.bin,
        site,
        transport: &cfg.transport,
        log_dir: Some(&cfg.log_dir),
        fast: cfg.fast,
        extra: &cfg.extra,
    }
}

impl Supervisor {
    /// Pushes the current full address map to every up site. Down
    /// sites get the map when they come back (their respawn triggers
    /// another full redistribution).
    fn redistribute_peers(&mut self) {
        let peers = self.board.peer_entries();
        for slot in &mut self.slots {
            if let Slot::Up(proc) = slot {
                if let Err(e) = proc.ctrl.set_peers(peers.clone()) {
                    // A site that died since the last poll; the next
                    // poll reaps it.
                    eprintln!("supervisor: set_peers site {}: {e}", proc.id.0);
                }
            }
        }
    }
}

/// Binds the supervisor's own control listener and serves
/// `RestartStats`/`Ping` on it from a background thread. The site id
/// in the pong is 0: the supervisor is not a site.
fn serve_supervisor_ctrl(restarts: Arc<Mutex<Vec<u32>>>) -> std::io::Result<std::net::SocketAddr> {
    use crate::ctrl::{read_framed, write_framed, CtrlReply, CtrlRequest, RestartEntry};
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let restarts = Arc::clone(&restarts);
            std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let mut dec = camelot_net::FrameDecoder::new();
                loop {
                    let req = match read_framed::<CtrlRequest>(&mut stream, &mut dec) {
                        Ok(Some(req)) => req,
                        _ => return,
                    };
                    let reply = match req {
                        CtrlRequest::Ping => CtrlReply::Pong { site: SiteId(0) },
                        CtrlRequest::RestartStats => CtrlReply::Restarts {
                            counts: restarts
                                .lock()
                                .unwrap()
                                .iter()
                                .enumerate()
                                .map(|(i, &restarts)| RestartEntry {
                                    site: SiteId(i as u32 + 1),
                                    restarts,
                                })
                                .collect(),
                        },
                        other => CtrlReply::Err {
                            detail: format!("supervisor does not serve {other:?}"),
                        },
                    };
                    if write_framed(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    Ok(addr)
}
