//! Application drivers: closed-loop clients issuing transactions.
//!
//! The paper's experiments use "minimal transactions" — one small
//! operation at a single server at each participating site — so that
//! latency divides cleanly into operation processing and transaction
//! management (§4.2). An [`AppSpec`] describes one such client: the
//! operations per transaction, the commit protocol, the repetition
//! count and think time. The world runs each app as a closed loop
//! (next transaction begins only after the previous one resolved).

use camelot_core::CommitMode;
use camelot_net::Outcome;
use camelot_types::{Duration, ObjectId, ServerId, SiteId, Time};

/// Kind of operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    Write,
}

/// One operation in a transaction.
#[derive(Debug, Clone)]
pub struct OpSpec {
    pub site: SiteId,
    pub server: ServerId,
    pub object: ObjectId,
    pub kind: OpKind,
}

impl OpSpec {
    pub fn read(site: SiteId, server: ServerId, object: ObjectId) -> Self {
        OpSpec {
            site,
            server,
            object,
            kind: OpKind::Read,
        }
    }

    pub fn write(site: SiteId, server: ServerId, object: ObjectId) -> Self {
        OpSpec {
            site,
            server,
            object,
            kind: OpKind::Write,
        }
    }
}

/// One client application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Site the application (and its transactions' coordinator) lives
    /// on.
    pub home: SiteId,
    /// Operations of each transaction, performed in sequence.
    pub ops: Vec<OpSpec>,
    /// Commit protocol.
    pub mode: CommitMode,
    /// Transactions to run.
    pub reps: u32,
    /// Idle time between transactions.
    pub think: Duration,
}

impl AppSpec {
    /// The paper's minimal transaction: one operation at the home
    /// site's server plus one at each of `subs`' servers.
    pub fn minimal(
        home: SiteId,
        subs: &[SiteId],
        write: bool,
        mode: CommitMode,
        reps: u32,
    ) -> Self {
        let mk = |site: SiteId| {
            let obj = ObjectId(site.0 as u64);
            if write {
                OpSpec::write(site, ServerId(1), obj)
            } else {
                OpSpec::read(site, ServerId(1), obj)
            }
        };
        let mut ops = vec![mk(home)];
        ops.extend(subs.iter().map(|s| mk(*s)));
        AppSpec {
            home,
            ops,
            mode,
            reps,
            think: Duration::ZERO,
        }
    }
}

/// Measurements of one completed transaction.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// begin-transaction call issued.
    pub start: Time,
    /// commit/abort returned to the application.
    pub end: Time,
    pub outcome: Outcome,
    /// Total time spent in operation calls (subtracted to derive the
    /// transaction-management-only cost, as in §4.2).
    pub op_time: Duration,
    /// When the commit-transaction call was issued.
    pub commit_at: Time,
}

impl TxnRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> Duration {
        self.end.since(self.start)
    }

    /// Latency attributable to transaction management: everything but
    /// the operation calls (the paper subtracts 3.5 + 29.5·N ms).
    pub fn tm_latency(&self) -> Duration {
        self.latency().saturating_sub(self.op_time)
    }

    /// Latency of the commit call alone.
    pub fn commit_latency(&self) -> Duration {
        self.end.since(self.commit_at)
    }
}

/// Runtime state of one app (used by the world).
#[derive(Debug)]
pub struct AppState {
    pub spec: AppSpec,
    pub records: Vec<TxnRecord>,
    pub running: bool,
    // Current transaction progress.
    pub tid: Option<camelot_types::Tid>,
    pub started: Time,
    pub op_idx: usize,
    pub op_started: Time,
    pub op_time: Duration,
    pub commit_at: Time,
}

impl AppState {
    pub fn new(spec: AppSpec) -> Self {
        AppState {
            spec,
            records: Vec::new(),
            running: false,
            tid: None,
            started: Time::ZERO,
            op_idx: 0,
            op_started: Time::ZERO,
            op_time: Duration::ZERO,
            commit_at: Time::ZERO,
        }
    }

    /// True once all repetitions completed.
    pub fn done(&self) -> bool {
        self.records.len() as u32 >= self.spec.reps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_shapes() {
        let spec = AppSpec::minimal(
            SiteId(1),
            &[SiteId(2), SiteId(3)],
            true,
            CommitMode::TwoPhase,
            10,
        );
        assert_eq!(spec.ops.len(), 3);
        assert_eq!(spec.ops[0].site, SiteId(1));
        assert!(matches!(spec.ops[0].kind, OpKind::Write));
        let spec = AppSpec::minimal(SiteId(1), &[], false, CommitMode::TwoPhase, 1);
        assert_eq!(spec.ops.len(), 1);
        assert!(matches!(spec.ops[0].kind, OpKind::Read));
    }

    #[test]
    fn txn_record_derivations() {
        let r = TxnRecord {
            start: Time(0),
            end: Time(110_000),
            outcome: Outcome::Committed,
            op_time: Duration::from_micros(32_500),
            commit_at: Time(40_000),
        };
        assert_eq!(r.latency(), Duration::from_millis(110));
        assert_eq!(r.tm_latency(), Duration::from_micros(77_500));
        assert_eq!(r.commit_latency(), Duration::from_millis(70));
    }

    #[test]
    fn app_state_done_tracking() {
        let spec = AppSpec::minimal(SiteId(1), &[], true, CommitMode::TwoPhase, 1);
        let mut st = AppState::new(spec);
        assert!(!st.done());
        st.records.push(TxnRecord {
            start: Time(0),
            end: Time(1),
            outcome: Outcome::Committed,
            op_time: Duration::ZERO,
            commit_at: Time(0),
        });
        assert!(st.done());
    }
}
