//! Simulation-world configuration.

use camelot_core::EngineConfig;
use camelot_types::{CostModel, Duration};
use camelot_wal::BatchPolicy;

/// Network behaviour.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Use multicast for coordinator broadcasts (one send slot covers
    /// all destinations) instead of sequential unicast (each send
    /// pays the 1.7 ms cycle time).
    pub multicast: bool,
    /// Mean of the per-delivery exponential OS-scheduling jitter when
    /// the network is otherwise idle. `ZERO` disables jitter.
    pub jitter_base: Duration,
    /// Additional jitter mean per concurrently in-flight datagram —
    /// this is what makes variance grow with network load.
    pub jitter_per_inflight: Duration,
    /// Probability that a send hits a scheduling *spike* (page fault,
    /// preemption): the heavy tail behind the large standard
    /// deviations of the paper's Figures 2–3.
    pub spike_prob: f64,
    /// Spike magnitude, uniform in `[spike_lo, spike_hi]`.
    pub spike_lo: Duration,
    pub spike_hi: Duration,
    /// Escalation of the spike probability across a burst of
    /// sequential sends from one site: the k-th send of a burst has
    /// probability `spike_prob * (1 + k * spike_burst_escalation)`.
    /// This is the "variance created by the coordinator's repeated
    /// sends" (§4.2); a multicast is a single send and never
    /// escalates.
    pub spike_burst_escalation: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            multicast: false,
            jitter_base: Duration::from_millis_f64(0.7),
            jitter_per_inflight: Duration::from_millis_f64(0.3),
            spike_prob: 0.06,
            spike_lo: Duration::from_millis(15),
            spike_hi: Duration::from_millis(55),
            spike_burst_escalation: 1.0,
        }
    }
}

impl NetConfig {
    /// Fully deterministic network (unit tests, exact static checks).
    pub fn deterministic() -> Self {
        NetConfig {
            multicast: false,
            jitter_base: Duration::ZERO,
            jitter_per_inflight: Duration::ZERO,
            spike_prob: 0.0,
            spike_lo: Duration::ZERO,
            spike_hi: Duration::ZERO,
            spike_burst_escalation: 0.0,
        }
    }
}

/// Transaction-manager process model.
#[derive(Debug, Clone)]
pub struct TmConfig {
    /// Thread-pool size; `None` = unbounded (latency experiments).
    pub threads: Option<usize>,
    /// CPU service per transaction-manager message (throughput mode;
    /// the VAX 8200 testbed's per-message protocol-processing cost).
    pub cpu_per_msg: Duration,
    /// Kernel (master-CPU) service per local IPC hop. The Mach
    /// version of the throughput testbed "had only a single run queue
    /// on one master processor" (§4.5), so IPC serializes there; this
    /// is what caps read throughput when neither the TranMan thread
    /// pool nor the logger does. `ZERO` disables the model.
    pub kernel_per_hop: Duration,
    /// Mean of the exponential per-hop CPU overhead (process CPU time
    /// the paper's static analysis ignores — the reason "the addition
    /// of primitive latencies provides an underestimate of the
    /// measured time"). `ZERO` disables it.
    pub hop_overhead_mean: Duration,
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig {
            threads: None,
            cpu_per_msg: Duration::ZERO,
            kernel_per_hop: Duration::ZERO,
            hop_overhead_mean: Duration::ZERO,
        }
    }
}

/// Disk-manager / log model.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Group-commit policy (Immediate = group commit off).
    pub policy: BatchPolicy,
    /// Duration of one platter write (a force). Latency experiments
    /// use Table 2's 15 ms; throughput experiments the ~33 ms value
    /// behind "about 30 log writes per second".
    pub platter: Duration,
    /// Background flush period for lazily appended records (the
    /// delayed-commit optimization's commit records) when no forced
    /// write carries them sooner.
    pub lazy_flush: Duration,
    /// Logger CPU consumed per platter write (throughput mode; the
    /// single-threaded disk manager is the update-test bottleneck).
    pub cpu_per_write: Duration,
    /// Logger CPU consumed per *record batch member*: receiving the
    /// out-of-line record transfer and processing it. Group commit
    /// shares the platter write but not this per-record work, which
    /// is what keeps its gain bounded (Figure 4).
    pub cpu_per_record: Duration,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            policy: BatchPolicy::Coalesce,
            platter: Duration::from_millis(15),
            lazy_flush: Duration::from_millis(100),
            cpu_per_write: Duration::ZERO,
            cpu_per_record: Duration::ZERO,
        }
    }
}

/// Whole-world configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of sites (ids 1..=sites).
    pub sites: u32,
    /// Data servers per site (ids 1..=servers_per_site). The paper's
    /// throughput experiments use one server per application pair so
    /// operation processing is never the bottleneck.
    pub servers_per_site: u32,
    /// Primitive costs (defaults to the paper's Tables 1–2).
    pub costs: CostModel,
    pub net: NetConfig,
    pub tm: TmConfig,
    pub disk: DiskConfig,
    /// Per-site transaction-manager engine configuration (protocol
    /// variant, piggybacking, timeouts).
    pub engine: EngineConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            sites: 1,
            servers_per_site: 1,
            costs: CostModel::rt_pc_mach(),
            net: NetConfig::default(),
            tm: TmConfig::default(),
            disk: DiskConfig::default(),
            engine: EngineConfig::default(),
            seed: 1,
        }
    }
}

impl WorldConfig {
    /// Configuration for the latency experiments (Figures 2–3).
    pub fn latency(sites: u32, engine: EngineConfig, seed: u64) -> Self {
        WorldConfig {
            sites,
            engine,
            seed,
            ..Self::default()
        }
    }

    /// Configuration for the throughput experiments (Figures 4–5):
    /// one site, bounded thread pool, slow platter, CPU costs on.
    pub fn throughput(threads: usize, group_commit: bool, pairs: u32, seed: u64) -> Self {
        let costs = CostModel::rt_pc_mach();
        WorldConfig {
            sites: 1,
            servers_per_site: pairs,
            net: NetConfig::deterministic(),
            tm: TmConfig {
                threads: Some(threads),
                cpu_per_msg: Duration::from_millis(9),
                kernel_per_hop: Duration::from_millis_f64(3.3),
                hop_overhead_mean: Duration::ZERO,
            },
            disk: DiskConfig {
                policy: if group_commit {
                    camelot_wal::BatchPolicy::Coalesce
                } else {
                    camelot_wal::BatchPolicy::Immediate
                },
                platter: costs.log_platter_write,
                lazy_flush: Duration::from_millis(100),
                cpu_per_write: Duration::ZERO,
                cpu_per_record: Duration::from_millis(70),
            },
            engine: EngineConfig::default(),
            costs,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_latency_oriented() {
        let c = WorldConfig::default();
        assert!(c.tm.threads.is_none());
        assert_eq!(c.disk.platter, Duration::from_millis(15));
        assert!(!c.net.multicast);
    }

    #[test]
    fn throughput_config_bounds_threads_and_slows_platter() {
        let c = WorldConfig::throughput(5, true, 4, 1);
        assert_eq!(c.tm.threads, Some(5));
        assert!(c.disk.platter > Duration::from_millis(30));
        assert_eq!(c.net.jitter_base, Duration::ZERO);
        let c2 = WorldConfig::throughput(1, false, 4, 1);
        assert_eq!(c2.servers_per_site, 4);
        assert_eq!(c2.disk.policy, camelot_wal::BatchPolicy::Immediate);
    }
}
