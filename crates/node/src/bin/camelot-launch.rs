//! Launches an N-site localhost Camelot cluster as real OS processes
//! and runs the banking workload across it.
//!
//! Each site is a `camelot-site` child process (found next to this
//! binary) with its own engine shards, WAL, disk-manager thread and
//! kernel socket. The launcher reads each child's `ready` handshake,
//! distributes the data-plane port map, funds a ledger of accounts,
//! then runs randomized cross-site transfers — begin at a coordinator
//! site, debit and credit through the involved sites' control
//! sockets, commit with the participant set declared explicitly (the
//! multi-process deployment has no home communication manager spying
//! on remote operations).
//!
//! At the end it checks the paper's banking invariant — money is
//! conserved across every committed state — and exits nonzero if the
//! cluster disagrees.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration as StdDuration;

use camelot_node::procs::{distribute_peers, sibling_site_bin, wait_quiesce, SiteProc, SpawnSpec};
use camelot_types::{ObjectId, ServerId, SiteId, Tid};

const SRV: ServerId = ServerId(1);
const INITIAL: i64 = 100;

struct Opts {
    sites: u32,
    txns: u32,
    accounts: u64,
    transport: String,
    nonblocking: bool,
    log_dir: Option<PathBuf>,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: camelot-launch [--sites N] [--txns M] [--accounts K] \
         [--transport udp|tcp] [--nonblocking] [--log-dir DIR] [--seed S]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        sites: 3,
        txns: 20,
        accounts: 4,
        transport: "udp".into(),
        nonblocking: false,
        log_dir: None,
        seed: 1,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => opts.sites = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--txns" => opts.txns = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--accounts" => opts.accounts = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--transport" => opts.transport = value(&mut i),
            "--nonblocking" => opts.nonblocking = true,
            "--log-dir" => opts.log_dir = Some(PathBuf::from(value(&mut i))),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    if opts.sites == 0 || opts.accounts == 0 {
        usage();
    }
    opts
}

fn balance(raw: &[u8]) -> i64 {
    if raw.is_empty() {
        0
    } else {
        i64::from_le_bytes(raw.try_into().expect("8-byte balance"))
    }
}

/// SplitMix64: cheap deterministic stream for workload choices.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() {
    let opts = parse_opts();
    let bin = sibling_site_bin().unwrap_or_else(|e| {
        eprintln!("camelot-launch: {e}");
        exit(1);
    });

    let mut sites: Vec<SiteProc> = (1..=opts.sites)
        .map(|i| {
            SiteProc::spawn(&SpawnSpec {
                bin: &bin,
                site: SiteId(i),
                transport: &opts.transport,
                log_dir: opts.log_dir.as_deref(),
                fast: true,
                extra: &[],
            })
            .unwrap_or_else(|e| {
                eprintln!("camelot-launch: spawn site {i}: {e}");
                exit(1);
            })
        })
        .collect();
    distribute_peers(&mut sites).expect("distribute peers");
    println!(
        "camelot-launch: {} sites up ({}), {} accounts each",
        opts.sites, opts.transport, opts.accounts
    );

    // Fund every site's ledger with one local transaction.
    for s in sites.iter_mut() {
        let tid = s.ctrl.begin().expect("begin funding txn");
        for a in 0..opts.accounts {
            s.ctrl
                .write(&tid, SRV, ObjectId(a), INITIAL.to_le_bytes().to_vec())
                .expect("fund account");
        }
        assert!(
            s.ctrl
                .commit(&tid, opts.nonblocking, vec![])
                .expect("funding commit"),
            "funding at site {} must commit",
            s.id.0
        );
    }

    let mut rng = opts.seed;
    let mut committed = 0u32;
    let mut aborted = 0u32;
    for t in 0..opts.txns {
        let coord = (t % opts.sites) as usize;
        let src = (mix(&mut rng) % opts.sites as u64) as usize;
        let mut dst = (mix(&mut rng) % opts.sites as u64) as usize;
        if dst == src {
            dst = (dst + 1) % opts.sites as usize;
        }
        let src_acct = ObjectId(mix(&mut rng) % opts.accounts);
        let dst_acct = ObjectId(mix(&mut rng) % opts.accounts);
        let amount = (mix(&mut rng) % 20) as i64 + 1;
        match transfer(
            &mut sites,
            coord,
            (src, src_acct),
            (dst, dst_acct),
            amount,
            opts.nonblocking,
        ) {
            Ok(true) => committed += 1,
            Ok(false) => aborted += 1,
            Err(e) => {
                aborted += 1;
                eprintln!("camelot-launch: transfer {t} failed: {e}");
            }
        }
    }
    println!("camelot-launch: {committed} committed, {aborted} aborted");

    // A non-blocking commit returns at quorum; subordinates apply the
    // outcome in phase three. Audit only after the protocol quiesces.
    if !wait_quiesce(&mut sites, StdDuration::from_secs(20)) {
        for s in sites.iter_mut() {
            let dump = s.ctrl.debug_state().unwrap_or_default();
            if !dump.is_empty() {
                eprintln!("camelot-launch: site {} still busy: {dump}", s.id.0);
            }
        }
    }

    // Conservation: committed balances must sum to the funded total.
    let mut total = 0i64;
    for s in sites.iter_mut() {
        for a in 0..opts.accounts {
            total += balance(
                &s.ctrl
                    .committed_value(SRV, ObjectId(a))
                    .expect("committed value"),
            );
        }
    }
    let expected = opts.sites as i64 * opts.accounts as i64 * INITIAL;
    let conserved = total == expected;
    println!(
        "camelot-launch: ledger total {total} (expected {expected}) — {}",
        if conserved { "conserved" } else { "VIOLATION" }
    );

    for s in sites.iter_mut() {
        s.ctrl.shutdown();
        let _ = s.child.wait();
    }
    if !conserved {
        exit(1);
    }
}

/// One cross-site transfer; `Ok(true)` committed, `Ok(false)` aborted.
fn transfer(
    sites: &mut [SiteProc],
    coord: usize,
    (src, src_acct): (usize, ObjectId),
    (dst, dst_acct): (usize, ObjectId),
    amount: i64,
    nonblocking: bool,
) -> camelot_types::Result<bool> {
    let tid: Tid = sites[coord].ctrl.begin()?;
    let participants = vec![sites[src].id, sites[dst].id];
    let run = |sites: &mut [SiteProc]| -> camelot_types::Result<()> {
        let from = balance(&sites[src].ctrl.read(&tid, SRV, src_acct)?);
        sites[src]
            .ctrl
            .write(&tid, SRV, src_acct, (from - amount).to_le_bytes().to_vec())?;
        let to = balance(&sites[dst].ctrl.read(&tid, SRV, dst_acct)?);
        sites[dst]
            .ctrl
            .write(&tid, SRV, dst_acct, (to + amount).to_le_bytes().to_vec())?;
        Ok(())
    };
    if let Err(e) = run(sites) {
        // Lock conflict or timeout: abort and surface the cause.
        let _ = sites[coord].ctrl.abort(&tid, participants);
        return Err(e);
    }
    sites[coord].ctrl.commit(&tid, nonblocking, participants)
}
