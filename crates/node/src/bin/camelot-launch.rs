//! Launches an N-site localhost Camelot cluster as real OS processes
//! and runs the banking workload across it — under supervision.
//!
//! Each site is a `camelot-site` child process (found next to this
//! binary) with its own engine shards, WAL, disk-manager thread and
//! kernel socket. A [`Supervisor`] owns the children: it reads each
//! handshake, distributes the data-plane port map, and — when a site
//! dies — respawns it on the same WAL directory (recovery rebuilds
//! it) with capped exponential backoff, re-distributing the new port
//! map so peers reconnect. `--kill-every K` makes the launcher kill a
//! random site every K transfers, turning a plain run into a
//! self-healing demonstration.
//!
//! At the end it checks the paper's banking invariant — money is
//! conserved across every committed state — prints per-site restart
//! counts, and exits nonzero if the cluster disagrees or any site
//! burned its restart budget (in which case that site's last stderr
//! lines are printed).

use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration as StdDuration, Instant};

use camelot_node::procs::{sibling_site_bin, Supervisor, SupervisorConfig};
use camelot_types::{CamelotError, ObjectId, ServerId, SiteId, Tid};

const SRV: ServerId = ServerId(1);
const INITIAL: i64 = 100;

struct Opts {
    sites: u32,
    txns: u32,
    accounts: u64,
    transport: String,
    nonblocking: bool,
    log_dir: Option<PathBuf>,
    seed: u64,
    kill_every: u32,
    restart_budget: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: camelot-launch [--sites N] [--txns M] [--accounts K] \
         [--transport udp|tcp] [--nonblocking] [--log-dir DIR] [--seed S] \
         [--kill-every K] [--restart-budget N]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        sites: 3,
        txns: 20,
        accounts: 4,
        transport: "udp".into(),
        nonblocking: false,
        log_dir: None,
        seed: 1,
        kill_every: 0,
        restart_budget: 5,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => opts.sites = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--txns" => opts.txns = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--accounts" => opts.accounts = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--transport" => opts.transport = value(&mut i),
            "--nonblocking" => opts.nonblocking = true,
            "--log-dir" => opts.log_dir = Some(PathBuf::from(value(&mut i))),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--kill-every" => opts.kill_every = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--restart-budget" => {
                opts.restart_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
        i += 1;
    }
    if opts.sites == 0 || opts.accounts == 0 {
        usage();
    }
    opts
}

fn balance(raw: &[u8]) -> i64 {
    if raw.is_empty() {
        0
    } else {
        i64::from_le_bytes(raw.try_into().expect("8-byte balance"))
    }
}

/// SplitMix64: cheap deterministic stream for workload choices.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Prints failed-site post-mortems and exits nonzero if any site has
/// burned its restart budget.
fn bail_on_budget_exhaustion(sup: &Supervisor) {
    let failed = sup.failed_sites();
    if failed.is_empty() {
        return;
    }
    for f in &failed {
        eprintln!(
            "camelot-launch: site {} exhausted its restart budget (last exit: {})",
            f.site.0, f.status
        );
        eprintln!("camelot-launch: site {} last stderr lines:", f.site.0);
        for line in &f.stderr_tail {
            eprintln!("  | {line}");
        }
    }
    exit(1);
}

fn main() {
    let opts = parse_opts();
    let bin = sibling_site_bin().unwrap_or_else(|e| {
        eprintln!("camelot-launch: {e}");
        exit(1);
    });

    // Supervision needs a stable WAL root so respawned sites recover
    // the incarnation they lost.
    let log_dir = opts.log_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("camelot-launch-{}", std::process::id()))
    });
    std::fs::create_dir_all(&log_dir).expect("create log dir");

    let mut cfg = SupervisorConfig::new(bin, opts.sites, &opts.transport, log_dir);
    cfg.restart_budget = opts.restart_budget;
    let mut sup = Supervisor::start(cfg).unwrap_or_else(|e| {
        eprintln!("camelot-launch: start cluster: {e}");
        exit(1);
    });
    println!(
        "camelot-launch: {} sites up ({}), {} accounts each, supervised",
        opts.sites, opts.transport, opts.accounts
    );

    // Fund every site's ledger with one local transaction.
    for id in 1..=opts.sites {
        let ctrl = sup.ctrl(SiteId(id)).expect("funding: site up");
        let tid = ctrl.begin().expect("begin funding txn");
        for a in 0..opts.accounts {
            ctrl.write(&tid, SRV, ObjectId(a), INITIAL.to_le_bytes().to_vec())
                .expect("fund account");
        }
        assert!(
            ctrl.commit(&tid, opts.nonblocking, vec![])
                .expect("funding commit"),
            "funding at site {id} must commit",
        );
    }

    let mut rng = opts.seed;
    let mut committed = 0u32;
    let mut aborted = 0u32;
    let mut failed = 0u32;
    for t in 0..opts.txns {
        sup.poll();
        bail_on_budget_exhaustion(&sup);
        if opts.kill_every > 0 && t > 0 && t % opts.kill_every == 0 {
            let victim = SiteId((mix(&mut rng) % opts.sites as u64) as u32 + 1);
            if sup.kill_site(victim) {
                println!("camelot-launch: killed site {} at txn {t}", victim.0);
            }
        }
        let coord = SiteId((t % opts.sites) + 1);
        let src = SiteId((mix(&mut rng) % opts.sites as u64) as u32 + 1);
        let mut dst = SiteId((mix(&mut rng) % opts.sites as u64) as u32 + 1);
        if dst == src {
            dst = SiteId(dst.0 % opts.sites + 1);
        }
        let src_acct = ObjectId(mix(&mut rng) % opts.accounts);
        let dst_acct = ObjectId(mix(&mut rng) % opts.accounts);
        let amount = (mix(&mut rng) % 20) as i64 + 1;
        match transfer(
            &mut sup,
            coord,
            (src, src_acct),
            (dst, dst_acct),
            amount,
            opts.nonblocking,
        ) {
            Ok(true) => committed += 1,
            Ok(false) => aborted += 1,
            Err(e) => {
                failed += 1;
                eprintln!("camelot-launch: transfer {t} failed: {e}");
                // Give the supervisor's restart backoff a chance to
                // elapse instead of burning the remaining budget of
                // transfers against a site that is still down.
                std::thread::sleep(StdDuration::from_millis(25));
            }
        }
    }
    println!("camelot-launch: {committed} committed, {aborted} aborted, {failed} failed");

    // Let any in-flight restarts finish before auditing.
    if !sup.wait_all_up(StdDuration::from_secs(20)) {
        eprintln!("camelot-launch: not all sites came back up");
    }
    bail_on_budget_exhaustion(&sup);

    // A non-blocking commit returns at quorum; subordinates apply the
    // outcome in phase three. Audit only after the protocol quiesces.
    let quiesce_deadline = Instant::now() + StdDuration::from_secs(20);
    loop {
        sup.poll();
        let mut busy = false;
        for id in 1..=opts.sites {
            let Some(ctrl) = sup.ctrl(SiteId(id)) else {
                busy = true;
                continue;
            };
            if ctrl.debug_state().map(|d| !d.is_empty()).unwrap_or(true) {
                busy = true;
            }
        }
        if !busy {
            break;
        }
        if Instant::now() >= quiesce_deadline {
            eprintln!("camelot-launch: cluster did not quiesce");
            break;
        }
        std::thread::sleep(StdDuration::from_millis(50));
    }

    // Conservation: committed balances must sum to the funded total —
    // regardless of which transfers committed, aborted, or were cut
    // short by a kill (atomicity makes every subset conserve).
    let mut total = 0i64;
    for id in 1..=opts.sites {
        let ctrl = sup.ctrl(SiteId(id)).expect("audit: site up");
        let mut site_total = 0i64;
        for a in 0..opts.accounts {
            let v = balance(
                &ctrl
                    .committed_value(SRV, ObjectId(a))
                    .expect("committed value"),
            );
            site_total += v;
        }
        println!("camelot-launch: site {id} holds {site_total}");
        total += site_total;
    }
    let expected = opts.sites as i64 * opts.accounts as i64 * INITIAL;
    let conserved = total == expected;
    println!(
        "camelot-launch: ledger total {total} (expected {expected}) — {}",
        if conserved { "conserved" } else { "VIOLATION" }
    );
    let counts = sup.restart_counts();
    println!(
        "camelot-launch: restarts {}",
        counts
            .iter()
            .map(|e| format!("site {}: {}", e.site.0, e.restarts))
            .collect::<Vec<_>>()
            .join(", ")
    );

    sup.shutdown();
    if !conserved {
        exit(1);
    }
}

/// One cross-site transfer; `Ok(true)` committed, `Ok(false)` aborted.
/// Control clients are fetched one at a time through the supervisor,
/// so a transfer that touches a dead site fails with a typed error
/// (and is aborted best-effort) instead of wedging.
fn transfer(
    sup: &mut Supervisor,
    coord: SiteId,
    (src, src_acct): (SiteId, ObjectId),
    (dst, dst_acct): (SiteId, ObjectId),
    amount: i64,
    nonblocking: bool,
) -> camelot_types::Result<bool> {
    let down = |site: SiteId| CamelotError::Log(format!("site {} is down", site.0));
    let tid: Tid = sup.ctrl(coord).ok_or_else(|| down(coord))?.begin()?;
    let participants = vec![src, dst];
    let run = |sup: &mut Supervisor| -> camelot_types::Result<()> {
        let ctrl = sup.ctrl(src).ok_or_else(|| down(src))?;
        let from = balance(&ctrl.read(&tid, SRV, src_acct)?);
        ctrl.write(&tid, SRV, src_acct, (from - amount).to_le_bytes().to_vec())?;
        let ctrl = sup.ctrl(dst).ok_or_else(|| down(dst))?;
        let to = balance(&ctrl.read(&tid, SRV, dst_acct)?);
        ctrl.write(&tid, SRV, dst_acct, (to + amount).to_le_bytes().to_vec())?;
        Ok(())
    };
    if let Err(e) = run(sup) {
        // Lock conflict, timeout, or dead site: abort and surface the
        // cause.
        if let Some(ctrl) = sup.ctrl(coord) {
            let _ = ctrl.abort(&tid, participants);
        }
        return Err(e);
    }
    match sup.ctrl(coord) {
        Some(ctrl) => ctrl.commit(&tid, nonblocking, participants),
        None => Err(down(coord)),
    }
}
