//! One Camelot site as a standalone OS process.
//!
//! Runs the real-thread runtime (`camelot-rt`) hosting exactly one
//! site — engine shards, data servers, WAL (optionally file-backed),
//! pipelined disk manager, tracer — and moves inter-TranMan traffic
//! over real kernel sockets via `camelot_net::SocketTransport`.
//!
//! On startup the process binds two OS-assigned localhost ports (the
//! UDP/TCP *data* socket and a TCP *control* socket), then prints one
//! handshake line on stdout:
//!
//! ```text
//! ready site=2 data=127.0.0.1:41234 ctrl=127.0.0.1:41235
//! ```
//!
//! A launcher (`camelot-launch`) or test harness reads the handshake,
//! distributes the data addresses with a `Peers` control request, and
//! drives transactions over the control protocol
//! (`camelot_node::ctrl`).
//!
//! Crash points armed over the control socket kill the site inside
//! the runtime; a watchdog notices and turns that into a real process
//! exit (status 3), so "kill a subordinate mid-prepare" in a test is
//! an actual process death. Restarting means spawning a fresh process
//! on the same `--log-dir`: recovery rebuilds the site from the log,
//! and a fresh sequence base keeps peers from mistaking the new
//! incarnation's datagrams for replays.

use std::io::Write as IoWrite;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::exit;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration as StdDuration;

use camelot_core::CommitMode;
use camelot_net::{FaultPlan, FrameDecoder, SocketConfig, SocketMode, SocketTransport};
use camelot_node::ctrl::{
    read_framed, write_framed, CtrlClient, CtrlReply, CtrlRequest, Handshake, SiteStatsWire,
};
use camelot_rt::{Client, Cluster, RemoteNet, RtConfig, SiteStats, TraceEventKind};
use camelot_types::Duration;
use camelot_types::{CamelotError, FamilyId, SiteId};

struct Opts {
    site: SiteId,
    mode: SocketMode,
    log_dir: Option<PathBuf>,
    servers: u32,
    fast: bool,
    call_timeout: StdDuration,
    trace_capacity: Option<usize>,
    trace_out: Option<PathBuf>,
    fault_seed: u64,
    drop_pm: u32,
    delay_pm: u32,
    dup_pm: u32,
    fault_delay: StdDuration,
    fault_budget: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: camelot-site --site N [--transport udp|tcp] [--log-dir DIR] \
         [--servers N] [--fast] [--call-timeout-ms MS] [--trace-capacity N] \
         [--trace-out FILE] [--fault-seed S] [--drop PM] [--delay PM] [--dup PM] \
         [--fault-delay-ms MS] [--fault-budget N]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        site: SiteId(0),
        mode: SocketMode::Udp,
        log_dir: None,
        servers: 1,
        fast: false,
        call_timeout: StdDuration::from_secs(30),
        trace_capacity: None,
        trace_out: None,
        fault_seed: 1,
        drop_pm: 0,
        delay_pm: 0,
        dup_pm: 0,
        fault_delay: StdDuration::from_millis(30),
        fault_budget: 64,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--site" => opts.site = SiteId(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--transport" => {
                opts.mode = SocketMode::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--log-dir" => opts.log_dir = Some(PathBuf::from(value(&mut i))),
            "--servers" => opts.servers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fast" => opts.fast = true,
            "--call-timeout-ms" => {
                opts.call_timeout =
                    StdDuration::from_millis(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--trace-capacity" => {
                opts.trace_capacity = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value(&mut i))),
            "--fault-seed" => opts.fault_seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--drop" => opts.drop_pm = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--delay" => opts.delay_pm = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--dup" => opts.dup_pm = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fault-delay-ms" => {
                opts.fault_delay =
                    StdDuration::from_millis(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fault-budget" => {
                opts.fault_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
        i += 1;
    }
    if opts.site.0 == 0 {
        usage();
    }
    opts
}

/// Engine timeouts scaled for localhost tests: protocol recovery
/// (vote timeouts, inquiries, takeovers) in hundreds of milliseconds
/// instead of the paper-scale seconds, so an end-to-end test that
/// kills a site converges quickly.
fn fast_engine() -> camelot_core::EngineConfig {
    camelot_core::EngineConfig {
        vote_timeout: Duration::from_millis(800),
        inquiry_interval: Duration::from_millis(500),
        notify_resend_interval: Duration::from_millis(400),
        nb_outcome_timeout: Duration::from_millis(700),
        takeover_window: Duration::from_millis(300),
        recruit_window: Duration::from_millis(300),
        takeover_retry: Duration::from_millis(600),
        retry_cap: Duration::from_secs(5),
        orphan_check_interval: Duration::from_secs(1),
        ..camelot_core::EngineConfig::default()
    }
}

/// Bridges the partial cluster's non-local datagrams onto the socket
/// transport. Installed after the transport exists; the brief window
/// where sends find no transport is indistinguishable from loss, which
/// the protocol already tolerates.
#[derive(Default)]
struct RemoteBridge {
    transport: Mutex<Option<Arc<SocketTransport>>>,
}

impl RemoteBridge {
    fn install(&self, t: Arc<SocketTransport>) {
        *self.transport.lock().unwrap() = Some(t);
    }
}

impl RemoteNet for RemoteBridge {
    fn send_remote(&self, _from: SiteId, to: SiteId, msg: camelot_net::TmMessage) {
        if let Some(t) = self.transport.lock().unwrap().as_ref() {
            // An unknown peer is a lost datagram; protocol timers
            // (inquiry, resend) recover once the peer map arrives.
            let _ = t.send(to, msg, vec![]);
        }
    }
}

fn main() {
    let opts = parse_opts();
    let site = opts.site;
    let fault = Arc::new(if opts.drop_pm + opts.delay_pm + opts.dup_pm > 0 {
        FaultPlan::new(
            opts.fault_seed,
            opts.drop_pm,
            opts.delay_pm,
            opts.dup_pm,
            opts.fault_delay,
            opts.fault_budget,
        )
    } else {
        FaultPlan::disabled()
    });
    let mut cfg = RtConfig {
        servers_per_site: opts.servers,
        call_timeout: opts.call_timeout,
        log_dir: opts.log_dir.clone(),
        trace: true,
        engine: if opts.fast {
            fast_engine()
        } else {
            camelot_core::EngineConfig::default()
        },
        ..RtConfig::default()
    };
    if let Some(cap) = opts.trace_capacity {
        cfg.trace_capacity = cap;
    }
    let bridge = Arc::new(RemoteBridge::default());
    let cluster = Arc::new(Cluster::new_site(
        site,
        cfg,
        Arc::clone(&fault),
        bridge.clone() as Arc<dyn RemoteNet>,
    ));
    let transport = Arc::new(
        SocketTransport::bind(
            SocketConfig::new(site, opts.mode),
            Arc::clone(&fault),
            cluster.site_tracer(site),
        )
        .expect("bind data socket"),
    );
    bridge.install(Arc::clone(&transport));

    // Inbound data plane: deduplicated deliveries feed the TranMan
    // exactly as the in-process router would.
    {
        let cluster = Arc::clone(&cluster);
        let transport = Arc::clone(&transport);
        thread::spawn(move || loop {
            match transport.recv() {
                Ok(Some(delivery)) => {
                    for msg in delivery.messages {
                        cluster.inject_datagram(delivery.from, site, msg);
                    }
                }
                Ok(None) => {}
                Err(e) => eprintln!("site {}: data recv error: {e}", site.0),
            }
        });
    }

    // Watchdog: an armed crash point kills the site inside the
    // runtime; make that a real process death so multi-process tests
    // observe an actual exit.
    {
        let cluster = Arc::clone(&cluster);
        let trace_out = opts.trace_out.clone();
        thread::spawn(move || loop {
            thread::sleep(StdDuration::from_millis(20));
            if !cluster.is_alive(site) {
                if let Some(path) = &trace_out {
                    let _ = std::fs::write(path, cluster.drain_trace_jsonl());
                }
                eprintln!("site {}: crashed at armed crash point; exiting", site.0);
                exit(3);
            }
        });
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ctrl socket");
    let handshake = Handshake {
        site,
        data: transport.local_addr(),
        ctrl: listener.local_addr().expect("ctrl addr"),
    };
    println!("{}", handshake.render());
    std::io::stdout().flush().expect("flush handshake");

    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let cluster = Arc::clone(&cluster);
        let transport = Arc::clone(&transport);
        let fault = Arc::clone(&fault);
        let trace_out = opts.trace_out.clone();
        thread::spawn(move || serve_ctrl(stream, site, cluster, transport, fault, trace_out));
    }
}

fn serve_ctrl(
    mut stream: TcpStream,
    site: SiteId,
    cluster: Arc<Cluster>,
    transport: Arc<SocketTransport>,
    fault: Arc<FaultPlan>,
    trace_out: Option<PathBuf>,
) {
    let _ = stream.set_nodelay(true);
    let client = cluster.client(site);
    let mut dec = FrameDecoder::new();
    loop {
        let req = match read_framed::<CtrlRequest>(&mut stream, &mut dec) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                eprintln!("site {}: ctrl decode error: {e}", site.0);
                return;
            }
        };
        let shutdown = matches!(req, CtrlRequest::Shutdown);
        let reply = handle(req, site, &client, &cluster, &transport, &fault);
        if write_framed(&mut stream, &reply).is_err() {
            return;
        }
        if shutdown {
            let _ = stream.flush();
            if let Some(path) = &trace_out {
                let _ = std::fs::write(path, cluster.drain_trace_jsonl());
            }
            exit(0);
        }
    }
}

fn handle(
    req: CtrlRequest,
    site: SiteId,
    client: &Client,
    cluster: &Cluster,
    transport: &SocketTransport,
    fault: &FaultPlan,
) -> CtrlReply {
    match req {
        CtrlRequest::Ping => CtrlReply::Pong { site },
        CtrlRequest::Peers { peers } => {
            for p in peers {
                if p.site == site {
                    continue;
                }
                match p.addr.parse() {
                    Ok(addr) => transport.set_peer(p.site, addr),
                    Err(e) => {
                        return CtrlReply::Err {
                            detail: format!("bad peer address {}: {e}", p.addr),
                        }
                    }
                }
            }
            CtrlReply::Ok
        }
        CtrlRequest::Begin => match client.begin() {
            Ok(tid) => CtrlReply::Began { tid },
            Err(e) => err(e),
        },
        CtrlRequest::Read {
            tid,
            server,
            object,
        } => match client.read(&tid, site, server, object) {
            Ok(value) => CtrlReply::Value { value },
            Err(e) => err(e),
        },
        CtrlRequest::Write {
            tid,
            server,
            object,
            value,
        } => match client.write(&tid, site, server, object, value) {
            Ok(value) => CtrlReply::Value { value },
            Err(e) => err(e),
        },
        CtrlRequest::Commit {
            tid,
            nonblocking,
            participants,
        } => {
            let mode = if nonblocking {
                CommitMode::NonBlocking
            } else {
                CommitMode::TwoPhase
            };
            match client.commit_with(&tid, mode, participants) {
                Ok(outcome) => CtrlReply::Outcome {
                    committed: outcome == camelot_net::Outcome::Committed,
                },
                Err(e) => err(e),
            }
        }
        CtrlRequest::Abort { tid, participants } => match client.abort_with(&tid, participants) {
            Ok(()) => CtrlReply::Ok,
            Err(e) => err(e),
        },
        CtrlRequest::CommittedValue { server, object } => CtrlReply::Value {
            value: cluster.committed_value(site, server, object),
        },
        CtrlRequest::DebugState => CtrlReply::State {
            dump: cluster.debug_state(site),
        },
        CtrlRequest::ArmCrash { point } => {
            fault.arm_crash(site, point);
            CtrlReply::Ok
        }
        CtrlRequest::Heal => {
            fault.heal();
            CtrlReply::Ok
        }
        // Legacy whole-ring drain, now bounded: serving one default-
        // size chunk keeps any caller inside the 1 MiB frame cap (a
        // full ring rendered into one frame used to panic the ctrl
        // thread). Callers loop until empty, exactly like
        // `DrainTraceChunk`.
        CtrlRequest::DrainTrace => CtrlReply::Trace {
            jsonl: camelot_rt::to_jsonl(
                &cluster.drain_trace_chunk(CtrlClient::DRAIN_CHUNK as usize),
            ),
        },
        CtrlRequest::DrainTraceChunk { max_events } => CtrlReply::Trace {
            jsonl: camelot_rt::to_jsonl(&cluster.drain_trace_chunk(max_events as usize)),
        },
        CtrlRequest::PhaseStats => {
            match cluster.stats().sites.into_iter().find(|s| s.site == site) {
                Some(s) => CtrlReply::Phases {
                    phases: Box::new(s.phases),
                    proto: Box::new(s.proto_phases),
                },
                None => CtrlReply::Err {
                    detail: format!("no stats for site {}", site.0),
                },
            }
        }
        CtrlRequest::EngineStats => {
            match cluster.stats().sites.into_iter().find(|s| s.site == site) {
                Some(s) => CtrlReply::Engine {
                    stats: site_stats_wire(&s),
                },
                None => CtrlReply::Err {
                    detail: format!("no stats for site {}", site.0),
                },
            }
        }
        CtrlRequest::FillTrace { events } => {
            let tracer = cluster.site_tracer(site);
            let family = FamilyId {
                origin: site,
                seq: u64::MAX,
            };
            for i in 0..events {
                tracer.emit(Some(family), TraceEventKind::WireEncode { bytes: i });
            }
            CtrlReply::Ok
        }
        CtrlRequest::Shutdown => CtrlReply::Ok,
        CtrlRequest::TransportStats => CtrlReply::Transport {
            stats: transport.stats(),
        },
        CtrlRequest::FaultStats => CtrlReply::Fault {
            stats: fault.stats(),
        },
        CtrlRequest::Partition { a, b } => {
            fault.partition(&a, &b);
            CtrlReply::Ok
        }
        CtrlRequest::SetSkew {
            site: target,
            per_mille,
        } => {
            // Only this site's timers route through this plan; a skew
            // for another site is a no-op here, so installing it
            // unconditionally keeps the launcher's broadcast simple.
            fault.set_skew(target, per_mille);
            CtrlReply::Ok
        }
        CtrlRequest::RestartStats => CtrlReply::Err {
            detail: "restart stats live on the supervisor, not a site".into(),
        },
    }
}

fn err(e: CamelotError) -> CtrlReply {
    CtrlReply::Err {
        detail: format!("{e}"),
    }
}

/// Flattens a runtime stats snapshot into the ctrl wire form.
fn site_stats_wire(s: &SiteStats) -> SiteStatsWire {
    SiteStatsWire {
        site: s.site,
        begins: s.engine.begins,
        nested_begins: s.engine.nested_begins,
        commits: s.engine.commits,
        read_only_commits: s.engine.read_only_commits,
        aborts: s.engine.aborts,
        forces: s.engine.forces,
        lazy_appends: s.engine.lazy_appends,
        datagrams: s.engine.datagrams,
        piggybacked: s.engine.piggybacked,
        takeovers: s.engine.takeovers,
        blocked: s.engine.blocked,
        live_families: s.live_families as u64,
        wal_records: s.wal.records,
        wal_forces_requested: s.wal.forces_requested,
        wal_forces_effective: s.wal.forces_effective,
        lock_wait_us: s.lock_wait.as_micros() as u64,
        inputs: s.inputs,
        platter_writes: s.platter_writes,
        forces_satisfied: s.forces_satisfied,
        max_batch: s.max_batch,
        lazy_drained: s.lazy_drained,
        queue_ops: s.queue_ops,
        queue_parked: s.queue_parked,
        queue_vote_timeouts: s.queue_vote_timeouts,
        queue_cascades: s.queue_cascades,
        reads: s.servers.reads,
        writes: s.servers.writes,
        lock_waits: s.servers.lock_waits,
        joins: s.servers.joins,
        deadlocks: s.servers.deadlocks,
        trace_emitted: s.trace_emitted,
        trace_dropped: s.trace_dropped,
    }
}
