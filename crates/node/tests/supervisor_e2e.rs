//! End-to-end supervision tests over real OS processes and sockets.
//!
//! The acceptance scenario for the self-healing cluster: a 3-site
//! supervised TCP cluster survives a scripted campaign of {kill,
//! partition {1,2}|{3}, clock-skew site 2, heal} *under load*, the
//! killed site recovers its WAL and rejoins, the conservation
//! invariant holds over the committed balances, and the supervisor's
//! own control endpoint reports the restart counts. A second test
//! pins the budget-exhaustion path: with a zero restart budget the
//! supervisor gives up and surfaces the site's post-mortem instead of
//! respawning forever.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use camelot_node::ctrl::CtrlClient;
use camelot_node::procs::{Supervisor, SupervisorConfig};
use camelot_types::{CamelotError, ObjectId, ServerId, SiteId, Tid};

const SRV: ServerId = ServerId(1);
const SITES: u32 = 3;
const ACCOUNTS: u64 = 4;
const INITIAL: i64 = 100;

fn test_log_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camelot-supe2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create log dir");
    dir
}

fn supervisor(name: &str, budget: u32) -> Supervisor {
    let mut cfg = SupervisorConfig::new(
        PathBuf::from(env!("CARGO_BIN_EXE_camelot-site")),
        SITES,
        "tcp",
        test_log_dir(name),
    );
    cfg.restart_budget = budget;
    // A blocking commit racing a partition install can stall for the
    // site's full call timeout; keep that bounded at test scale.
    cfg.extra.push("--call-timeout-ms".into());
    cfg.extra.push("4000".into());
    Supervisor::start(cfg).expect("start supervised cluster")
}

fn balance(raw: &[u8]) -> i64 {
    if raw.is_empty() {
        0
    } else {
        i64::from_le_bytes(raw.try_into().expect("8-byte balance"))
    }
}

fn fund(sup: &mut Supervisor) {
    for id in 1..=SITES {
        let ctrl = sup.ctrl(SiteId(id)).expect("funding: site up");
        let tid = ctrl.begin().expect("begin");
        for a in 0..ACCOUNTS {
            ctrl.write(&tid, SRV, ObjectId(a), INITIAL.to_le_bytes().to_vec())
                .expect("fund");
        }
        assert!(ctrl.commit(&tid, false, vec![]).expect("funding commit"));
    }
}

/// One cross-site transfer through the supervisor's control clients;
/// errors (dead or partitioned site) abort best-effort and surface.
fn transfer(
    sup: &mut Supervisor,
    coord: SiteId,
    (src, src_acct): (SiteId, ObjectId),
    (dst, dst_acct): (SiteId, ObjectId),
    amount: i64,
) -> camelot_types::Result<bool> {
    let down = |site: SiteId| CamelotError::Log(format!("site {} is down", site.0));
    let tid: Tid = sup.ctrl(coord).ok_or_else(|| down(coord))?.begin()?;
    let run = |sup: &mut Supervisor| -> camelot_types::Result<()> {
        let ctrl = sup.ctrl(src).ok_or_else(|| down(src))?;
        let from = balance(&ctrl.read(&tid, SRV, src_acct)?);
        ctrl.write(&tid, SRV, src_acct, (from - amount).to_le_bytes().to_vec())?;
        let ctrl = sup.ctrl(dst).ok_or_else(|| down(dst))?;
        let to = balance(&ctrl.read(&tid, SRV, dst_acct)?);
        ctrl.write(&tid, SRV, dst_acct, (to + amount).to_le_bytes().to_vec())?;
        Ok(())
    };
    if let Err(e) = run(sup) {
        if let Some(ctrl) = sup.ctrl(coord) {
            let _ = ctrl.abort(&tid, vec![src, dst]);
        }
        return Err(e);
    }
    match sup.ctrl(coord) {
        Some(ctrl) => ctrl.commit(&tid, false, vec![src, dst]),
        None => Err(down(coord)),
    }
}

/// A short burst of load: every site coordinates transfers between
/// rotating account pairs; failures are tolerated (faults are live).
fn burst(sup: &mut Supervisor, rounds: u32, salt: u64) -> u32 {
    let mut committed = 0;
    for t in 0..rounds {
        sup.poll();
        let x = salt
            .wrapping_add(t as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let coord = SiteId((t % SITES) + 1);
        let src = SiteId((x % SITES as u64) as u32 + 1);
        let dst = SiteId((src.0 % SITES) + 1);
        let src_acct = ObjectId((x >> 8) % ACCOUNTS);
        let dst_acct = ObjectId((x >> 16) % ACCOUNTS);
        let amount = ((x >> 24) % 15) as i64 + 1;
        match transfer(sup, coord, (src, src_acct), (dst, dst_acct), amount) {
            Ok(true) => committed += 1,
            Ok(false) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    committed
}

fn heal_all(sup: &mut Supervisor) {
    for id in 1..=SITES {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            let _ = ctrl.heal();
        }
    }
}

fn quiesce(sup: &mut Supervisor) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        sup.poll();
        let busy = (1..=SITES).any(|id| match sup.ctrl(SiteId(id)) {
            Some(ctrl) => ctrl.debug_state().map(|d| !d.is_empty()).unwrap_or(true),
            None => true,
        });
        if !busy {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "cluster did not quiesce within 20s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Kill, partition, skew, heal — under load, with a conservation
/// audit and supervisor-reported restart counts at the end.
#[test]
fn supervised_cluster_survives_kill_partition_skew_heal_under_load() {
    let mut sup = supervisor("campaign", 5);
    fund(&mut sup);
    let mut committed = burst(&mut sup, 6, 1);

    // Kill a site mid-load; the supervisor respawns it on its WAL.
    assert!(sup.kill_site(SiteId(2)), "site 2 was up");
    committed += burst(&mut sup, 6, 2);
    assert!(
        sup.wait_all_up(Duration::from_secs(20)),
        "site 2 did not come back: {:?}",
        sup.failed_sites()
    );

    // Symmetric partition {1,2} | {3}: transfers crossing the cut
    // time out and abort; the rest keep committing.
    let (a, b) = ([SiteId(1), SiteId(2)], [SiteId(3)]);
    for id in 1..=SITES {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            ctrl.partition(&a, &b).expect("install partition");
        }
    }
    committed += burst(&mut sup, 6, 3);

    // Clock-skew site 2 to half-speed timers on top of the partition.
    for id in 1..=SITES {
        if let Some(ctrl) = sup.ctrl(SiteId(id)) {
            ctrl.set_skew(SiteId(2), 1500).expect("install skew");
        }
    }
    committed += burst(&mut sup, 6, 4);

    // Heal everything and let the protocols settle.
    heal_all(&mut sup);
    assert!(sup.wait_all_up(Duration::from_secs(20)));
    committed += burst(&mut sup, 6, 5);
    assert!(committed > 0, "no transfer committed across the campaign");
    quiesce(&mut sup);

    // Conservation: atomicity makes every commit/abort subset
    // conserve the funded total, kills and cuts included.
    let mut total = 0i64;
    for id in 1..=SITES {
        let ctrl = sup.ctrl(SiteId(id)).expect("audit: site up");
        for a in 0..ACCOUNTS {
            total += balance(&ctrl.committed_value(SRV, ObjectId(a)).expect("read"));
        }
    }
    assert_eq!(total, SITES as i64 * ACCOUNTS as i64 * INITIAL);

    // The supervisor's own control endpoint reports the campaign.
    let mut sup_ctrl = CtrlClient::connect(sup.ctrl_addr()).expect("supervisor ctrl");
    assert_eq!(sup_ctrl.ping().expect("ping"), SiteId(0));
    let counts = sup_ctrl.restart_stats().expect("restart stats");
    assert_eq!(counts.len(), SITES as usize);
    let site2 = counts.iter().find(|e| e.site == SiteId(2)).unwrap();
    assert!(
        site2.restarts >= 1,
        "killed site must have been restarted: {counts:?}"
    );
    sup.shutdown();
}

/// With a zero restart budget, a killed site is not respawned: the
/// supervisor marks it failed and serves the post-mortem.
#[test]
fn restart_budget_exhaustion_gives_up_with_post_mortem() {
    let mut sup = supervisor("budget", 0);
    assert!(sup.kill_site(SiteId(1)));
    let deadline = Instant::now() + Duration::from_secs(10);
    let failed = loop {
        sup.poll();
        let failed = sup.failed_sites();
        if !failed.is_empty() {
            break failed;
        }
        assert!(Instant::now() < deadline, "supervisor never gave up");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(failed[0].site, SiteId(1));
    assert!(
        failed[0].status.contains("signal") || failed[0].status.contains("9"),
        "post-mortem carries the exit status: {:?}",
        failed[0].status
    );
    // The other sites are untouched and the budget site stays down.
    assert!(sup.ctrl(SiteId(1)).is_none());
    assert!(sup.ctrl(SiteId(2)).is_some());
    let counts = sup.restart_counts();
    assert_eq!(
        counts
            .iter()
            .find(|e| e.site == SiteId(1))
            .unwrap()
            .restarts,
        0
    );
    sup.shutdown();
}
