//! End-to-end tests over *real OS processes and kernel sockets*.
//!
//! Each test spawns `camelot-site` binaries (cargo builds them and
//! hands us the path via `CARGO_BIN_EXE_camelot-site`), wires them
//! into a localhost cluster through the control protocol, and drives
//! distributed transactions across process boundaries:
//!
//! - a 3-site cluster commits two-phase and non-blocking transfers
//!   and every process agrees on the committed state;
//! - a subordinate killed mid-prepare (armed crash point → real
//!   `exit(3)`) is respawned on the same WAL directory, recovers, and
//!   the cluster again agrees — including a fresh commit through the
//!   restarted process;
//! - an `#[ignore]`d chaos campaign runs 25 seeded schedules with
//!   drop/delay/duplicate injection at the socket layer and audits
//!   conservation after healing, dumping per-site trace JSONL
//!   artifacts on failure.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use camelot_node::ctrl::{CtrlClient, Handshake, PeerEntry};
use camelot_types::{CrashPoint, ObjectId, ServerId, SiteId, Tid};

const SRV: ServerId = ServerId(1);

struct SiteProc {
    id: SiteId,
    child: Child,
    handshake: Handshake,
    ctrl: CtrlClient,
}

impl SiteProc {
    /// Spawns one site process and completes its stdout handshake.
    fn spawn(id: SiteId, log_dir: Option<&Path>, extra: &[&str]) -> SiteProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camelot-site"));
        cmd.arg("--site")
            .arg(id.0.to_string())
            .arg("--fast")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(dir) = log_dir {
            cmd.arg("--log-dir").arg(dir.join(format!("site-{}", id.0)));
        }
        let mut child = cmd.spawn().expect("spawn camelot-site");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let handshake = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(h) = Handshake::parse(&line) {
                        break h;
                    }
                }
                _ => panic!("site {} exited before handshake", id.0),
            }
        };
        assert_eq!(handshake.site, id);
        let ctrl = CtrlClient::connect(handshake.ctrl).expect("ctrl connect");
        SiteProc {
            id,
            child,
            handshake,
            ctrl,
        }
    }

    fn shutdown(mut self) {
        self.ctrl.shutdown();
        let _ = self.child.wait();
    }
}

/// Sends the full data-plane address map to every site.
fn distribute_peers(sites: &mut [SiteProc]) {
    let peers: Vec<PeerEntry> = sites
        .iter()
        .map(|s| PeerEntry {
            site: s.id,
            addr: s.handshake.data.to_string(),
        })
        .collect();
    for s in sites.iter_mut() {
        s.ctrl.set_peers(peers.clone()).expect("set peers");
    }
}

fn balance(raw: &[u8]) -> i64 {
    if raw.is_empty() {
        0
    } else {
        i64::from_le_bytes(raw.try_into().expect("8-byte balance"))
    }
}

/// Funds `accounts` objects with `amount` each via one local commit.
fn fund(site: &mut SiteProc, accounts: u64, amount: i64) {
    let tid = site.ctrl.begin().expect("begin funding");
    for a in 0..accounts {
        site.ctrl
            .write(&tid, SRV, ObjectId(a), amount.to_le_bytes().to_vec())
            .expect("fund write");
    }
    assert!(
        site.ctrl
            .commit(&tid, false, vec![])
            .expect("funding commit"),
        "funding at site {} must commit",
        site.id.0
    );
}

/// Moves `amount` between two (site, account) slots; `Ok(true)` if the
/// transfer committed.
fn transfer(
    sites: &mut [SiteProc],
    coord: usize,
    (src, src_acct): (usize, ObjectId),
    (dst, dst_acct): (usize, ObjectId),
    amount: i64,
    nonblocking: bool,
) -> camelot_types::Result<bool> {
    let tid: Tid = sites[coord].ctrl.begin()?;
    let participants = vec![sites[src].id, sites[dst].id];
    let ops = |sites: &mut [SiteProc]| -> camelot_types::Result<()> {
        let from = balance(&sites[src].ctrl.read(&tid, SRV, src_acct)?);
        sites[src]
            .ctrl
            .write(&tid, SRV, src_acct, (from - amount).to_le_bytes().to_vec())?;
        let to = balance(&sites[dst].ctrl.read(&tid, SRV, dst_acct)?);
        sites[dst]
            .ctrl
            .write(&tid, SRV, dst_acct, (to + amount).to_le_bytes().to_vec())?;
        Ok(())
    };
    if let Err(e) = ops(sites) {
        let _ = sites[coord].ctrl.abort(&tid, participants);
        return Err(e);
    }
    sites[coord].ctrl.commit(&tid, nonblocking, participants)
}

/// Polls every reachable site's protocol state until all report empty
/// (everything resolved, applied and forgotten) or the deadline hits.
fn wait_quiesce(sites: &mut [SiteProc], deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let busy = sites
            .iter_mut()
            .any(|s| s.ctrl.debug_state().map(|d| !d.is_empty()).unwrap_or(false));
        if !busy {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn committed(site: &mut SiteProc, acct: ObjectId) -> i64 {
    balance(
        &site
            .ctrl
            .committed_value(SRV, acct)
            .expect("committed value"),
    )
}

const A0: ObjectId = ObjectId(0);

/// Three real processes, real UDP datagrams between them: a 2PC
/// transfer and a non-blocking transfer both commit, and afterwards
/// every process reports the same committed ledger.
#[test]
fn three_processes_commit_and_agree() {
    let mut sites: Vec<SiteProc> = (1..=3)
        .map(|i| SiteProc::spawn(SiteId(i), None, &["--transport", "udp"]))
        .collect();
    distribute_peers(&mut sites);
    fund(&mut sites[0], 1, 100);

    // Two-phase: site 1 coordinates, debits itself, credits site 2.
    assert!(
        transfer(&mut sites, 0, (0, A0), (1, A0), 30, false).expect("2pc transfer"),
        "two-phase transfer must commit"
    );
    // Non-blocking: site 2 coordinates, debits itself, credits site 3.
    assert!(
        transfer(&mut sites, 1, (1, A0), (2, A0), 10, true).expect("nb transfer"),
        "non-blocking transfer must commit"
    );

    assert!(
        wait_quiesce(&mut sites, Duration::from_secs(20)),
        "cluster must quiesce"
    );
    // Agreement: each process, asked independently, reports the state
    // the commits imply — and the money adds back up to the funding.
    assert_eq!(committed(&mut sites[0], A0), 70);
    assert_eq!(committed(&mut sites[1], A0), 20);
    assert_eq!(committed(&mut sites[2], A0), 10);

    for s in sites {
        s.shutdown();
    }
}

/// Same cluster over TCP streams instead of UDP datagrams.
#[test]
fn three_processes_commit_over_tcp() {
    let mut sites: Vec<SiteProc> = (1..=3)
        .map(|i| SiteProc::spawn(SiteId(i), None, &["--transport", "tcp"]))
        .collect();
    distribute_peers(&mut sites);
    fund(&mut sites[0], 1, 100);
    assert!(
        transfer(&mut sites, 0, (0, A0), (2, A0), 25, false).expect("tcp transfer"),
        "transfer over TCP must commit"
    );
    assert!(wait_quiesce(&mut sites, Duration::from_secs(20)));
    assert_eq!(committed(&mut sites[0], A0), 75);
    assert_eq!(committed(&mut sites[2], A0), 25);
    // The coordinator really used its kernel sockets, and a clean run
    // shows clean transport counters.
    let stats = sites[0].ctrl.transport_stats().expect("transport stats");
    assert!(stats.sends > 0, "coordinator sent frames: {stats:?}");
    assert_eq!(stats.queue_drops, 0, "{stats:?}");
    for s in sites {
        s.shutdown();
    }
}

/// The TCP twin of the kill/recover test: a subordinate dies
/// mid-prepare and restarts on a *new data port*. The coordinator's
/// sender thread must tear down its cached stream, reconnect to the
/// new address (fresh FrameDecoder on the new connection), and carry
/// a post-restart commit — reconnect-mid-stream, across real
/// processes.
#[test]
fn killed_subordinate_recovers_over_tcp() {
    let dir = std::env::temp_dir().join(format!("camelot-e2e-kill-tcp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("log dir");

    let spawn = |i: u32| SiteProc::spawn(SiteId(i), Some(&dir), &["--transport", "tcp"]);
    let mut sites: Vec<SiteProc> = (1..=3).map(spawn).collect();
    distribute_peers(&mut sites);
    fund(&mut sites[2], 1, 100);

    sites[1]
        .ctrl
        .arm_crash(CrashPoint::PreForce)
        .expect("arm crash");
    let outcome = transfer(&mut sites, 0, (2, A0), (1, A0), 40, false);
    assert!(
        !outcome.unwrap_or(false),
        "transfer through the dying subordinate must not commit"
    );
    let status = sites[1].child.wait().expect("wait for killed site");
    assert_eq!(status.code(), Some(3), "watchdog exit code");

    sites[1] = spawn(2);
    distribute_peers(&mut sites);

    assert!(
        wait_quiesce(&mut sites, Duration::from_secs(20)),
        "cluster must resolve the interrupted transfer"
    );
    assert_eq!(committed(&mut sites[2], A0), 100, "debit undone");
    assert_eq!(committed(&mut sites[1], A0), 0, "credit never applied");

    assert!(
        transfer(&mut sites, 0, (2, A0), (1, A0), 40, false).expect("retry transfer"),
        "post-restart transfer must commit over the reconnected stream"
    );
    assert!(wait_quiesce(&mut sites, Duration::from_secs(20)));
    assert_eq!(committed(&mut sites[2], A0), 60);
    assert_eq!(committed(&mut sites[1], A0), 40);

    for s in sites {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills a subordinate *mid-prepare* (the armed crash point fires when
/// it forces its prepare record, turning into a real `exit(3)`), then
/// respawns it on the same WAL directory and checks that the cluster
/// agrees: the interrupted transfer aborted everywhere — presumed
/// abort answers the recovered site's ignorance — and a retry through
/// the restarted process commits.
#[test]
fn killed_subordinate_recovers_and_rejoins() {
    let dir = std::env::temp_dir().join(format!("camelot-e2e-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("log dir");

    let spawn = |i: u32| SiteProc::spawn(SiteId(i), Some(&dir), &["--transport", "udp"]);
    let mut sites: Vec<SiteProc> = (1..=3).map(spawn).collect();
    distribute_peers(&mut sites);
    fund(&mut sites[2], 1, 100);

    // Arm: site 2 dies at its next log force — which is the prepare
    // force of the transfer below, since its writes are lazy.
    sites[1]
        .ctrl
        .arm_crash(CrashPoint::PreForce)
        .expect("arm crash");

    // Site 1 coordinates; site 2 is a subordinate with an update.
    // The prepare kills site 2, its vote never arrives, and the vote
    // timeout aborts the transfer.
    let outcome = transfer(&mut sites, 0, (2, A0), (1, A0), 40, false);
    assert!(
        !outcome.unwrap_or(false),
        "transfer through the dying subordinate must not commit"
    );

    // The armed crash must surface as a real process death, exit 3.
    let status = sites[1].child.wait().expect("wait for killed site");
    assert_eq!(status.code(), Some(3), "watchdog exit code");

    // Respawn on the same WAL directory: recovery replays the log.
    // Everyone gets the new incarnation's data address.
    sites[1] = spawn(2);
    distribute_peers(&mut sites);

    assert!(
        wait_quiesce(&mut sites, Duration::from_secs(20)),
        "cluster must resolve the interrupted transfer"
    );
    // Agreement: the abort reached every copy of the data.
    assert_eq!(committed(&mut sites[2], A0), 100, "debit undone");
    assert_eq!(committed(&mut sites[1], A0), 0, "credit never applied");

    // The restarted process is a full citizen again: the same
    // transfer now commits through it.
    assert!(
        transfer(&mut sites, 0, (2, A0), (1, A0), 40, false).expect("retry transfer"),
        "post-restart transfer must commit"
    );
    assert!(wait_quiesce(&mut sites, Duration::from_secs(20)));
    assert_eq!(committed(&mut sites[2], A0), 60);
    assert_eq!(committed(&mut sites[1], A0), 40);

    for s in sites {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// 25 seeded chaos schedules against real sockets: every site injects
/// drop/delay/duplicate faults on its own links, the workload runs
/// through the noise, the plans are healed, and the ledger must still
/// conserve money. Failures dump each site's trace ring as JSONL
/// under `CARGO_TARGET_TMPDIR` for offline forensics.
///
/// Ignored by default (takes minutes); CI runs it with
/// `--include-ignored`.
#[test]
#[ignore = "long-running chaos campaign; run with --include-ignored"]
fn socket_chaos_campaign_conserves_money() {
    let artifacts = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("socket-chaos");
    std::fs::create_dir_all(&artifacts).expect("artifact dir");

    for seed in 1..=25u64 {
        let fault_args = [
            "--transport",
            "udp",
            "--drop",
            "60",
            "--delay",
            "100",
            "--dup",
            "60",
            "--fault-delay-ms",
            "20",
            "--fault-budget",
            "48",
        ];
        let mut sites: Vec<SiteProc> = (1..=3)
            .map(|i| {
                let seed_s = (seed * 31 + i as u64).to_string();
                let mut extra: Vec<&str> = fault_args.to_vec();
                extra.push("--fault-seed");
                extra.push(&seed_s);
                SiteProc::spawn(SiteId(i), None, &extra)
            })
            .collect();
        distribute_peers(&mut sites);
        for s in sites.iter_mut() {
            fund(s, 2, 100);
        }

        // The workload may abort or time out under fire — that is the
        // point. Only safety (conservation) is asserted.
        let mut rng = seed;
        let mut mix = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for t in 0..6u64 {
            let src = (mix() % 3) as usize;
            let dst = (src + 1 + (mix() % 2) as usize) % 3;
            let nonblocking = mix() % 2 == 0;
            let _ = transfer(
                &mut sites,
                (t % 3) as usize,
                (src, ObjectId(mix() % 2)),
                (dst, ObjectId(mix() % 2)),
                (mix() % 15) as i64 + 1,
                nonblocking,
            );
        }

        // Stop injecting and let the recovery machinery finish.
        for s in sites.iter_mut() {
            s.ctrl.heal().expect("heal");
        }
        let quiesced = wait_quiesce(&mut sites, Duration::from_secs(30));

        let mut total = 0i64;
        for s in sites.iter_mut() {
            for a in 0..2 {
                total += committed(s, ObjectId(a));
            }
        }
        let conserved = total == 600;

        if !quiesced || !conserved {
            for s in sites.iter_mut() {
                let jsonl = s.ctrl.drain_trace().unwrap_or_default();
                let path = artifacts.join(format!("seed-{seed}-site-{}.jsonl", s.id.0));
                std::fs::write(&path, jsonl).expect("write trace artifact");
            }
            panic!(
                "seed {seed}: quiesced={quiesced} total={total} (expected 600); \
                 traces in {}",
                artifacts.display()
            );
        }
        for s in sites {
            s.shutdown();
        }
    }
}

/// Regression: a trace ring holding far more JSONL than the 1 MiB ctrl
/// frame cap must still drain completely. The unchunked drain used to
/// render the whole ring into a single reply frame, which the encoder
/// rejects past 1 MiB; the chunked protocol fetches bounded slices
/// until the ring is dry and must leave the connection usable.
#[test]
fn chunked_trace_drain_survives_oversized_ring() {
    let mut site = SiteProc::spawn(SiteId(1), None, &["--trace-capacity", "30000"]);

    site.ctrl.fill_trace(20_000).expect("fill trace ring");
    let jsonl = site.ctrl.drain_trace().expect("chunked drain");
    assert!(
        jsonl.len() > 1 << 20,
        "ring must exceed the 1 MiB frame cap to exercise chunking (got {} bytes)",
        jsonl.len()
    );
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 20_000, "every event drains exactly once");
    assert!(
        lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')),
        "each drained line is a complete JSON object"
    );

    // Capacity (30000) exceeded the fill (20000): nothing may drop.
    let stats = site.ctrl.engine_stats().expect("engine stats");
    assert_eq!(stats.trace_dropped, 0, "ring was large enough");
    assert_eq!(stats.trace_emitted, 20_000);

    // The ctrl connection survives the multi-chunk exchange: the
    // decoder is not poisoned and the ring is dry.
    assert_eq!(site.ctrl.ping().expect("ping after drain"), SiteId(1));
    assert!(
        site.ctrl.drain_trace().expect("second drain").is_empty(),
        "ring drains to empty"
    );

    site.shutdown();
}
