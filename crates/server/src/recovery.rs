//! Data-server recovery.
//!
//! "After a failure (of server, site, or disk) or an abort, the
//! recovery process reads the log and instructs servers how to undo
//! or redo updates of interrupted transactions." (paper §2)
//!
//! The scan classifies each family found in the durable log:
//!
//! - **committed** (a commit record exists): *redo* — install every
//!   update's new value;
//! - **aborted**, or active with no prepared record: *undo* — install
//!   nothing (the store never saw uncommitted values; undo means
//!   discarding the updates);
//! - **prepared / replicated but unresolved**: *in doubt* — the
//!   updates are reinstated as uncommitted state with their exclusive
//!   locks re-acquired, until the transaction manager resolves the
//!   outcome (the server then commits or aborts the family normally).

use std::collections::HashMap;

use camelot_types::{FamilyId, ObjectId, ServerId, SiteId, Tid};
use camelot_wal::LogRecord;

use crate::server::DataServer;

/// Result of a server recovery scan.
pub struct RecoveredServer {
    pub server: DataServer,
    /// Families reinstated in doubt (prepared, outcome unknown).
    pub in_doubt: Vec<FamilyId>,
    /// Families redone (committed).
    pub redone: Vec<FamilyId>,
    /// Families undone (aborted or never prepared).
    pub undone: Vec<FamilyId>,
}

#[derive(Default)]
struct FamScan {
    updates: Vec<(Tid, ObjectId, Vec<u8>, Vec<u8>)>,
    prepared: bool,
    committed: bool,
    aborted: bool,
    /// Subtrees aborted before the crash: their updates must not be
    /// redone even if the family committed. (The engine logs an abort
    /// record per subtree via the abort protocol; here we track
    /// per-tid aborts from `Abort` records of nested tids.)
    aborted_subtrees: Vec<Tid>,
}

/// Rebuilds one data server's state from the durable log records of
/// its site (records of other servers are ignored).
///
/// If the log contains [`LogRecord::ServerSnapshot`] records for this
/// server, the last one becomes the base store; replaying the
/// (value-carrying, hence idempotent) update records on top of it
/// then reconstructs the same state whether or not older records
/// survive — which is what makes pre-checkpoint log truncation safe.
pub fn recover(site: SiteId, id: ServerId, records: &[LogRecord]) -> RecoveredServer {
    let mut scans: HashMap<FamilyId, FamScan> = HashMap::new();
    let mut snapshot: Option<&[(camelot_types::ObjectId, Vec<u8>)]> = None;
    for rec in records {
        match rec {
            LogRecord::ServerSnapshot { server, objects } if *server == id => {
                snapshot = Some(objects);
            }
            _ => {}
        }
        match rec {
            LogRecord::ServerUpdate {
                tid,
                server,
                object,
                old,
                new,
            } if *server == id => {
                scans.entry(tid.family).or_default().updates.push((
                    tid.clone(),
                    *object,
                    old.clone(),
                    new.clone(),
                ));
            }
            LogRecord::Prepared { tid, .. } | LogRecord::NbPrepared { tid, .. } => {
                scans.entry(tid.family).or_default().prepared = true;
            }
            LogRecord::NbReplicate { tid, .. } => {
                scans.entry(tid.family).or_default().prepared = true;
            }
            LogRecord::Commit { tid, .. } => {
                scans.entry(tid.family).or_default().committed = true;
            }
            LogRecord::Abort { tid } => {
                let s = scans.entry(tid.family).or_default();
                if tid.is_top_level() {
                    s.aborted = true;
                } else {
                    s.aborted_subtrees.push(tid.clone());
                }
            }
            _ => {}
        }
    }

    let mut server = DataServer::new(site, id);
    if let Some(objects) = snapshot {
        for (obj, val) in objects {
            server.install_committed(*obj, val.clone());
        }
    }
    let mut in_doubt = Vec::new();
    let mut redone = Vec::new();
    let mut undone = Vec::new();
    // Classify families first (deterministic order for the report
    // lists), but defer committed installs: two committed families
    // touching the same object must redo in *log* order, which
    // family-id order does not preserve.
    let mut fams: Vec<FamilyId> = scans.keys().copied().collect();
    fams.sort();
    for &f in &fams {
        let scan = scans.get_mut(&f).expect("key exists");
        let live_updates: Vec<_> = std::mem::take(&mut scan.updates)
            .into_iter()
            .filter(|(tid, ..)| {
                !scan
                    .aborted_subtrees
                    .iter()
                    .any(|a| a.is_self_or_ancestor_of(tid))
            })
            .collect();
        if scan.committed && !scan.aborted {
            redone.push(f);
        } else if scan.aborted || !scan.prepared {
            // Undo: nothing to install (the store holds pre-images).
            if !live_updates.is_empty() || scan.aborted {
                undone.push(f);
            }
        } else {
            // In doubt: reinstate uncommitted state + locks.
            server.install_in_doubt(f, live_updates);
            in_doubt.push(f);
        }
    }
    // Redo: one pass over the whole log installs committed new-values
    // exactly in the order they were originally applied, interleaving
    // across families.
    for rec in records {
        let LogRecord::ServerUpdate {
            tid,
            server: srv,
            object,
            new,
            ..
        } = rec
        else {
            continue;
        };
        if *srv != id || !redone.contains(&tid.family) {
            continue;
        }
        let aborted_subtree = scans
            .get(&tid.family)
            .map(|s| {
                s.aborted_subtrees
                    .iter()
                    .any(|a| a.is_self_or_ancestor_of(tid))
            })
            .unwrap_or(false);
        if !aborted_subtree {
            server.install_committed(*object, new.clone());
        }
    }
    RecoveredServer {
        server,
        in_doubt,
        redone,
        undone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_wal::LogRecord as R;

    const SITE: SiteId = SiteId(1);
    const SRV: ServerId = ServerId(1);

    fn fam(n: u64) -> FamilyId {
        FamilyId {
            origin: SITE,
            seq: n,
        }
    }

    fn top(n: u64) -> Tid {
        Tid::top_level(fam(n))
    }

    fn upd(tid: &Tid, obj: u64, old: &[u8], new: &[u8]) -> R {
        R::ServerUpdate {
            tid: tid.clone(),
            server: SRV,
            object: ObjectId(obj),
            old: old.to_vec(),
            new: new.to_vec(),
        }
    }

    #[test]
    fn committed_family_is_redone() {
        let t = top(1);
        let log = vec![
            upd(&t, 7, b"", b"v1"),
            upd(&t, 8, b"", b"v2"),
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"v1");
        assert_eq!(r.server.committed_value(ObjectId(8)), b"v2");
        assert_eq!(r.redone, vec![fam(1)]);
        assert!(r.in_doubt.is_empty());
    }

    #[test]
    fn redo_applies_last_value_in_log_order() {
        let t = top(1);
        let log = vec![
            upd(&t, 7, b"", b"first"),
            upd(&t, 7, b"first", b"second"),
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"second");
    }

    #[test]
    fn redo_across_families_follows_log_order() {
        // A higher-id family writes an object *before* a lower-id
        // family overwrites it. Replaying in family-id order would
        // resurrect the older value; log order must win.
        let early = top(5);
        let late = top(2);
        let log = vec![
            upd(&early, 7, b"", b"first"),
            R::Commit {
                tid: early.clone(),
                subs: vec![],
            },
            upd(&late, 7, b"first", b"second"),
            R::Commit {
                tid: late.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"second");
        assert_eq!(r.redone.len(), 2);
    }

    #[test]
    fn aborted_and_unprepared_families_are_undone() {
        let t1 = top(1);
        let t2 = top(2);
        let log = vec![
            upd(&t1, 7, b"", b"doomed"),
            R::Abort { tid: t1.clone() },
            upd(&t2, 8, b"", b"crashed-mid-flight"),
            // t2 never prepared: presumed abort.
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"");
        assert_eq!(r.server.committed_value(ObjectId(8)), b"");
        assert_eq!(r.undone.len(), 2);
    }

    #[test]
    fn prepared_family_is_reinstated_in_doubt_with_locks() {
        let t = top(1);
        let log = vec![
            upd(&t, 7, b"", b"maybe"),
            R::Prepared {
                tid: t.clone(),
                coordinator: SiteId(9),
            },
        ];
        let r = recover(SITE, SRV, &log);
        let mut s = r.server;
        assert_eq!(r.in_doubt, vec![fam(1)]);
        // The committed store is untouched...
        assert_eq!(s.committed_value(ObjectId(7)), b"");
        // ...and the object is still locked against other families.
        let intruder = top(2);
        let fx = s.handle(crate::server::Request::Read {
            req: 1,
            tid: intruder,
            object: ObjectId(7),
        });
        assert!(fx.blocked, "in-doubt data stays locked");
        // Resolution: commit makes the update visible and unblocks.
        let fx = s.commit_family(fam(1));
        assert_eq!(fx.replies.len(), 1);
        assert_eq!(fx.replies[0].value, b"maybe");
        assert_eq!(s.committed_value(ObjectId(7)), b"maybe");
    }

    #[test]
    fn in_doubt_family_can_also_abort() {
        let t = top(1);
        let log = vec![
            upd(&t, 7, b"pre", b"post"),
            R::NbPrepared {
                tid: t.clone(),
                coordinator: SiteId(9),
                sites: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        let mut s = r.server;
        s.abort_family(fam(1));
        assert_eq!(s.committed_value(ObjectId(7)), b"");
        assert_eq!(s.active_families(), 0);
    }

    #[test]
    fn aborted_subtree_updates_are_not_redone() {
        let t = top(1);
        let child = t.child(1);
        let log = vec![
            upd(&t, 7, b"", b"keep"),
            upd(&child, 8, b"", b"undone-subtree"),
            R::Abort { tid: child.clone() },
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"keep");
        assert_eq!(r.server.committed_value(ObjectId(8)), b"");
    }

    #[test]
    fn other_servers_records_are_ignored() {
        let t = top(1);
        let log = vec![
            R::ServerUpdate {
                tid: t.clone(),
                server: ServerId(99),
                object: ObjectId(7),
                old: vec![],
                new: b"not-mine".to_vec(),
            },
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(7)), b"");
    }

    #[test]
    fn idempotent_recovery() {
        // Recovering twice from the same log yields the same store.
        let t = top(1);
        let log = vec![
            upd(&t, 7, b"", b"v"),
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let a = recover(SITE, SRV, &log);
        let b = recover(SITE, SRV, &log);
        assert_eq!(
            a.server.committed_value(ObjectId(7)),
            b.server.committed_value(ObjectId(7))
        );
    }

    #[test]
    fn snapshot_becomes_the_recovery_base() {
        // The snapshot carries committed state whose originating
        // records are gone (truncated): recovery must still produce it.
        let t = top(5);
        let log = vec![
            R::ServerSnapshot {
                server: SRV,
                objects: vec![(ObjectId(1), b"from-snapshot".to_vec())],
            },
            R::Checkpoint,
            // Post-checkpoint transaction overwrites object 2.
            upd(&t, 2, b"", b"after"),
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(1)), b"from-snapshot");
        assert_eq!(r.server.committed_value(ObjectId(2)), b"after");
    }

    #[test]
    fn later_snapshot_wins_and_replay_is_idempotent() {
        let t = top(6);
        let log = vec![
            R::ServerSnapshot {
                server: SRV,
                objects: vec![(ObjectId(1), b"old".to_vec())],
            },
            upd(&t, 1, b"old", b"new"),
            R::Commit {
                tid: t.clone(),
                subs: vec![],
            },
            // Second checkpoint already reflects the commit; the
            // update record before it is replayed anyway (idempotent).
            R::ServerSnapshot {
                server: SRV,
                objects: vec![(ObjectId(1), b"new".to_vec())],
            },
            R::Checkpoint,
        ];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(1)), b"new");
    }

    #[test]
    fn snapshot_of_other_server_is_ignored() {
        let log = vec![R::ServerSnapshot {
            server: ServerId(99),
            objects: vec![(ObjectId(1), b"not-mine".to_vec())],
        }];
        let r = recover(SITE, SRV, &log);
        assert_eq!(r.server.committed_value(ObjectId(1)), b"");
    }

    #[test]
    fn snapshot_roundtrips_through_data_server() {
        let mut s = DataServer::new(SITE, SRV);
        let t = top(7);
        s.handle(crate::server::Request::Write {
            req: 1,
            tid: t.clone(),
            object: ObjectId(3),
            value: b"v".to_vec(),
        });
        s.commit_family(fam(7));
        let snap = s.snapshot();
        let r = recover(SITE, SRV, &[snap]);
        assert_eq!(r.server.committed_value(ObjectId(3)), b"v");
    }

    #[test]
    fn empty_log_recovers_empty_server() {
        let r = recover(SITE, SRV, &[]);
        assert_eq!(r.server.active_families(), 0);
        assert!(r.in_doubt.is_empty() && r.redone.is_empty() && r.undone.is_empty());
    }
}
