//! The data server proper.

use std::collections::HashMap;

use camelot_locks::{Acquire, Granted, LockManager, Mode};
use camelot_net::Vote;
use camelot_types::{FamilyId, ObjectId, ServerId, SiteId, Tid};
use camelot_wal::LogRecord;

/// One operation request from an application (directly or forwarded
/// by the communication manager from a remote site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read an object's value under a shared lock.
    Read {
        req: u64,
        tid: Tid,
        object: ObjectId,
    },
    /// Write an object's value under an exclusive lock.
    Write {
        req: u64,
        tid: Tid,
        object: ObjectId,
        value: Vec<u8>,
    },
}

impl Request {
    pub fn req(&self) -> u64 {
        match self {
            Request::Read { req, .. } | Request::Write { req, .. } => *req,
        }
    }

    pub fn tid(&self) -> &Tid {
        match self {
            Request::Read { tid, .. } | Request::Write { tid, .. } => tid,
        }
    }
}

/// A completed operation's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpReply {
    pub req: u64,
    /// The value read (also echoed for writes: the new value).
    pub value: Vec<u8>,
}

/// What the runtime must do after a server call.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Effects {
    /// The server touched this transaction's family for the first
    /// time: tell the local transaction manager (join-transaction).
    pub join: Option<Tid>,
    /// Records for the disk manager ("reported as late as possible";
    /// the runtime appends them lazily — the prepare force makes them
    /// durable).
    pub log: Vec<LogRecord>,
    /// Completed operations, including previously blocked ones that a
    /// lock release just unblocked.
    pub replies: Vec<OpReply>,
    /// The *submitted* operation is queued behind a lock.
    pub blocked: bool,
    /// The submitted operation was denied because queueing it would
    /// have closed a waits-for cycle (deadlock). The requester is the
    /// victim: the operation is not queued, and the application should
    /// abort the transaction and retry.
    pub deadlock: bool,
}

impl Effects {
    fn reply(mut self, r: OpReply) -> Self {
        self.replies.push(r);
        self
    }
}

/// Counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub reads: u64,
    pub writes: u64,
    pub lock_waits: u64,
    pub joins: u64,
    /// Operations denied by deadlock detection (requester as victim).
    pub deadlocks: u64,
}

/// One in-progress update (ordered; undo walks this in reverse).
#[derive(Debug, Clone)]
struct Update {
    tid: Tid,
    object: ObjectId,
    old: Vec<u8>,
    new: Vec<u8>,
}

/// Per-family uncommitted state.
#[derive(Debug, Default)]
struct FamilyWork {
    updates: Vec<Update>,
    /// Current uncommitted values (after all updates so far).
    current: HashMap<ObjectId, Vec<u8>>,
}

/// A Camelot data server: recoverable byte-string objects, Moss-model
/// locking, old/new value logging.
pub struct DataServer {
    site: SiteId,
    id: ServerId,
    /// Committed object values. Absent = empty string (objects spring
    /// into existence on first write).
    store: HashMap<ObjectId, Vec<u8>>,
    locks: LockManager,
    work: HashMap<FamilyId, FamilyWork>,
    /// Operations queued behind locks, keyed by (object, tid).
    pending: HashMap<(ObjectId, Tid), Request>,
    /// Families this server must vote "no" on (failure injection).
    poisoned: HashMap<FamilyId, ()>,
    /// Families prepared and in doubt (locks pinned until outcome).
    in_doubt: HashMap<FamilyId, ()>,
    stats: ServerStats,
}

impl DataServer {
    pub fn new(site: SiteId, id: ServerId) -> Self {
        DataServer {
            site,
            id,
            store: HashMap::new(),
            locks: LockManager::new(),
            work: HashMap::new(),
            pending: HashMap::new(),
            poisoned: HashMap::new(),
            in_doubt: HashMap::new(),
            stats: ServerStats::default(),
        }
    }

    pub fn site(&self) -> SiteId {
        self.site
    }

    pub fn id(&self) -> ServerId {
        self.id
    }

    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Committed value of an object (what a fresh transaction would
    /// read). Empty slice if never written.
    pub fn committed_value(&self, object: ObjectId) -> &[u8] {
        self.store.get(&object).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of families with uncommitted work.
    pub fn active_families(&self) -> usize {
        self.work.len()
    }

    /// Families with uncommitted work, sorted (tests, leak checks).
    pub fn families(&self) -> Vec<FamilyId> {
        let mut f: Vec<FamilyId> = self.work.keys().copied().collect();
        f.sort();
        f
    }

    /// Direct access to the lock manager (tests, contention metrics).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Poison a family: this server will veto its prepare.
    pub fn poison(&mut self, family: FamilyId) {
        self.poisoned.insert(family, ());
    }

    /// Handles one operation request.
    pub fn handle(&mut self, request: Request) -> Effects {
        let mut fx = Effects::default();
        let tid = request.tid().clone();
        // Join on first touch of the family.
        if let std::collections::hash_map::Entry::Vacant(e) = self.work.entry(tid.family) {
            e.insert(FamilyWork::default());
            fx.join = Some(tid.clone());
            self.stats.joins += 1;
        }
        let (object, mode) = match &request {
            Request::Read { object, .. } => (*object, Mode::Shared),
            Request::Write { object, .. } => (*object, Mode::Exclusive),
        };
        match self.locks.acquire(object, &tid, mode) {
            Acquire::Granted => {
                let r = self.perform(&request, &mut fx);
                fx.reply(r)
            }
            Acquire::Queued => {
                if self.wait_would_deadlock(object, &tid, mode) {
                    // Deny rather than queue: the requester is the
                    // victim. Cancelling the wait may unblock other
                    // waiters the lock manager had queued behind it.
                    let (_, granted) = self.locks.cancel_wait(object, &tid);
                    self.run_granted(granted, &mut fx);
                    self.stats.deadlocks += 1;
                    fx.deadlock = true;
                    fx
                } else {
                    self.stats.lock_waits += 1;
                    self.pending.insert((object, tid), request);
                    fx.blocked = true;
                    fx
                }
            }
        }
    }

    /// Executes a granted operation.
    fn perform(&mut self, request: &Request, fx: &mut Effects) -> OpReply {
        match request {
            Request::Read { req, tid, object } => {
                self.stats.reads += 1;
                let value = self.visible_value(tid.family, *object);
                OpReply { req: *req, value }
            }
            Request::Write {
                req,
                tid,
                object,
                value,
            } => {
                self.stats.writes += 1;
                let old = self.visible_value(tid.family, *object);
                let fam = self.work.entry(tid.family).or_default();
                fam.updates.push(Update {
                    tid: tid.clone(),
                    object: *object,
                    old: old.clone(),
                    new: value.clone(),
                });
                fam.current.insert(*object, value.clone());
                fx.log.push(LogRecord::ServerUpdate {
                    tid: tid.clone(),
                    server: self.id,
                    object: *object,
                    old,
                    new: value.clone(),
                });
                OpReply {
                    req: *req,
                    value: value.clone(),
                }
            }
        }
    }

    /// Whether `tid.family` waiting on `object` in `mode` closes a
    /// waits-for cycle among families.
    ///
    /// Edges run from a waiting family to each family holding a
    /// conflicting lock on the awaited object (exclusive conflicts
    /// with everything; shared only with exclusive). Cycle search is
    /// a DFS from the candidate family. The check is conservative
    /// only in that multiple waiters on one object are all given
    /// edges to the holders, which can declare a deadlock one grant
    /// earlier than strictly necessary — a safe over-approximation,
    /// equivalent to a timeout firing early.
    fn wait_would_deadlock(&self, object: ObjectId, tid: &Tid, mode: Mode) -> bool {
        let me = tid.family;
        let mut edges: HashMap<FamilyId, Vec<FamilyId>> = HashMap::new();
        let add_wait = |edges: &mut HashMap<FamilyId, Vec<FamilyId>>,
                        locks: &LockManager,
                        obj: ObjectId,
                        fam: FamilyId,
                        m: Mode| {
            for (holder, hmode) in locks.holders(obj) {
                if holder.family == fam {
                    continue;
                }
                if m == Mode::Exclusive || hmode == Mode::Exclusive {
                    edges.entry(fam).or_default().push(holder.family);
                }
            }
        };
        for ((obj, waiter), req) in &self.pending {
            let m = match req {
                Request::Read { .. } => Mode::Shared,
                Request::Write { .. } => Mode::Exclusive,
            };
            add_wait(&mut edges, &self.locks, *obj, waiter.family, m);
        }
        add_wait(&mut edges, &self.locks, object, me, mode);
        // DFS: is `me` reachable from its own successors?
        let mut stack: Vec<FamilyId> = edges.get(&me).cloned().unwrap_or_default();
        let mut seen: Vec<FamilyId> = Vec::new();
        while let Some(f) = stack.pop() {
            if f == me {
                return true;
            }
            if seen.contains(&f) {
                continue;
            }
            seen.push(f);
            if let Some(next) = edges.get(&f) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// The value a member of `family` sees: its own uncommitted write
    /// if any, otherwise the committed value.
    fn visible_value(&self, family: FamilyId, object: ObjectId) -> Vec<u8> {
        if let Some(fam) = self.work.get(&family) {
            if let Some(v) = fam.current.get(&object) {
                return v.clone();
            }
        }
        self.store.get(&object).cloned().unwrap_or_default()
    }

    /// Phase-one vote for a top-level commit (Figure 1 step 8).
    pub fn vote(&mut self, family: FamilyId) -> Vote {
        if self.poisoned.remove(&family).is_some() {
            return Vote::No;
        }
        match self.work.get(&family) {
            Some(w) if !w.updates.is_empty() => {
                self.in_doubt.insert(family, ());
                Vote::Yes
            }
            _ => Vote::ReadOnly,
        }
    }

    /// Top-level commit: make updates visible, drop the family's
    /// locks (Figure 1 step 11). Returns effects whose replies are
    /// operations the lock release unblocked.
    pub fn commit_family(&mut self, family: FamilyId) -> Effects {
        let mut fx = Effects::default();
        if let Some(w) = self.work.remove(&family) {
            for (object, value) in w.current {
                self.store.insert(object, value);
            }
        }
        self.in_doubt.remove(&family);
        let granted = self.locks.release_family(family);
        self.run_granted(granted, &mut fx);
        fx
    }

    /// Top-level abort: discard updates, drop locks.
    pub fn abort_family(&mut self, family: FamilyId) -> Effects {
        let mut fx = Effects::default();
        self.work.remove(&family);
        self.in_doubt.remove(&family);
        self.poisoned.remove(&family);
        // Drop queued requests of the family too.
        self.pending.retain(|(_, tid), _| tid.family != family);
        let granted = self.locks.release_family(family);
        self.run_granted(granted, &mut fx);
        fx
    }

    /// Nested commit: the subtree's locks pass to the parent; its
    /// updates simply remain part of the family.
    pub fn sub_commit(&mut self, tid: &Tid) -> Effects {
        let mut fx = Effects::default();
        if tid.is_top_level() {
            return fx;
        }
        let granted = self.locks.commit_subtransaction(tid);
        self.run_granted(granted, &mut fx);
        fx
    }

    /// Nested abort: undo the subtree's updates in reverse order and
    /// release its locks.
    pub fn sub_abort(&mut self, tid: &Tid) -> Effects {
        let mut fx = Effects::default();
        if let Some(w) = self.work.get_mut(&tid.family) {
            // Undo in reverse: restore each update's old value.
            for u in w.updates.iter().rev() {
                if tid.is_self_or_ancestor_of(&u.tid) {
                    w.current.insert(u.object, u.old.clone());
                }
            }
            w.updates.retain(|u| !tid.is_self_or_ancestor_of(&u.tid));
            // Rebuild `current` for objects whose remaining top value
            // comes from surviving updates (the reverse restore above
            // may have clobbered a surviving sibling's newer value
            // only if interleaved; recompute to be exact).
            let mut current: HashMap<ObjectId, Vec<u8>> = HashMap::new();
            for u in &w.updates {
                current.insert(u.object, u.new.clone());
            }
            // Objects now untouched by any surviving update revert to
            // committed state: drop them from `current`.
            w.current = current;
        }
        self.pending
            .retain(|(_, t), _| !tid.is_self_or_ancestor_of(t));
        let granted = self.locks.abort_transaction(tid);
        self.run_granted(granted, &mut fx);
        fx
    }

    /// Completes operations whose locks were just granted.
    fn run_granted(&mut self, granted: Vec<Granted>, fx: &mut Effects) {
        for g in granted {
            if let Some(request) = self.pending.remove(&(g.object, g.tid.clone())) {
                // First touch may have been the queued op itself; the
                // family was created at submit time, so no join here.
                let r = self.perform(&request, fx);
                fx.replies.push(r);
            }
        }
    }

    // ----- Recovery support (used by crate::recovery) -----

    /// Installs a committed value directly, bypassing locking. Used by
    /// log recovery and by the queued execution mode's write-through
    /// (where commit ordering is enforced by the shard queues, not by
    /// this server's lock table).
    pub fn install_committed(&mut self, object: ObjectId, value: Vec<u8>) {
        self.store.insert(object, value);
    }

    /// Reinstates an in-doubt (prepared) family after a restart: its
    /// updates are live, its exclusive locks re-acquired.
    pub(crate) fn install_in_doubt(
        &mut self,
        family: FamilyId,
        updates: Vec<(Tid, ObjectId, Vec<u8>, Vec<u8>)>,
    ) {
        let mut w = FamilyWork::default();
        for (tid, object, old, new) in updates {
            let acq = self.locks.acquire(object, &tid, Mode::Exclusive);
            debug_assert_eq!(acq, Acquire::Granted, "recovery lock conflict");
            w.current.insert(object, new.clone());
            w.updates.push(Update {
                tid,
                object,
                old,
                new,
            });
        }
        self.work.insert(family, w);
        self.in_doubt.insert(family, ());
    }

    /// Families currently prepared and in doubt.
    pub fn in_doubt_families(&self) -> Vec<FamilyId> {
        self.in_doubt.keys().copied().collect()
    }

    /// Produces this server's checkpoint snapshot record: the
    /// committed store as of now. Written to the log (followed by a
    /// `Checkpoint` marker), it becomes recovery's base state and
    /// makes older records of already-resolved families truncatable.
    pub fn snapshot(&self) -> LogRecord {
        let mut objects: Vec<(ObjectId, Vec<u8>)> =
            self.store.iter().map(|(o, v)| (*o, v.clone())).collect();
        objects.sort_by_key(|(o, _)| *o);
        LogRecord::ServerSnapshot {
            server: self.id,
            objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_types::SiteId;

    const SITE: SiteId = SiteId(1);
    const SRV: ServerId = ServerId(1);

    fn fam(n: u64) -> FamilyId {
        FamilyId {
            origin: SITE,
            seq: n,
        }
    }

    fn top(n: u64) -> Tid {
        Tid::top_level(fam(n))
    }

    fn server() -> DataServer {
        DataServer::new(SITE, SRV)
    }

    fn write(s: &mut DataServer, req: u64, tid: &Tid, obj: u64, v: &[u8]) -> Effects {
        s.handle(Request::Write {
            req,
            tid: tid.clone(),
            object: ObjectId(obj),
            value: v.to_vec(),
        })
    }

    fn read(s: &mut DataServer, req: u64, tid: &Tid, obj: u64) -> Effects {
        s.handle(Request::Read {
            req,
            tid: tid.clone(),
            object: ObjectId(obj),
        })
    }

    #[test]
    fn first_touch_joins_and_logs_update() {
        let mut s = server();
        let t = top(1);
        let fx = write(&mut s, 1, &t, 7, b"hello");
        assert_eq!(fx.join, Some(t.clone()));
        assert_eq!(fx.log.len(), 1);
        match &fx.log[0] {
            LogRecord::ServerUpdate {
                object, old, new, ..
            } => {
                assert_eq!(*object, ObjectId(7));
                assert!(old.is_empty());
                assert_eq!(new, b"hello");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(fx.replies[0].value, b"hello");
        // Second op: no join.
        let fx = read(&mut s, 2, &t, 7);
        assert_eq!(fx.join, None);
        assert_eq!(fx.replies[0].value, b"hello");
    }

    #[test]
    fn uncommitted_writes_invisible_to_other_families_and_blocked() {
        let mut s = server();
        let t1 = top(1);
        let t2 = top(2);
        write(&mut s, 1, &t1, 7, b"secret");
        // Another family's read blocks on the exclusive lock.
        let fx = read(&mut s, 2, &t2, 7);
        assert!(fx.blocked);
        assert!(fx.replies.is_empty());
        // Commit t1: t2's read unblocks and sees the committed value.
        let fx = s.commit_family(fam(1));
        assert_eq!(fx.replies.len(), 1);
        assert_eq!(fx.replies[0].req, 2);
        assert_eq!(fx.replies[0].value, b"secret");
    }

    #[test]
    fn abort_discards_updates() {
        let mut s = server();
        let t = top(1);
        write(&mut s, 1, &t, 7, b"doomed");
        s.abort_family(fam(1));
        assert_eq!(s.committed_value(ObjectId(7)), b"");
        assert_eq!(s.active_families(), 0);
    }

    #[test]
    fn vote_yes_only_with_updates() {
        let mut s = server();
        let t1 = top(1);
        let t2 = top(2);
        write(&mut s, 1, &t1, 7, b"x");
        read(&mut s, 2, &t2, 8);
        assert_eq!(s.vote(fam(1)), Vote::Yes);
        assert_eq!(s.vote(fam(2)), Vote::ReadOnly);
        assert_eq!(s.in_doubt_families(), vec![fam(1)]);
    }

    #[test]
    fn poisoned_family_votes_no() {
        let mut s = server();
        let t = top(1);
        write(&mut s, 1, &t, 7, b"x");
        s.poison(fam(1));
        assert_eq!(s.vote(fam(1)), Vote::No);
    }

    #[test]
    fn nested_abort_undoes_only_subtree() {
        let mut s = server();
        let t = top(1);
        let c1 = t.child(1);
        let c2 = t.child(2);
        write(&mut s, 1, &t, 7, b"base");
        write(&mut s, 2, &c1, 7, b"child1");
        write(&mut s, 3, &c1, 8, b"c1-only");
        write(&mut s, 4, &c2, 9, b"c2");
        let fx = s.sub_abort(&c1);
        assert!(fx.replies.is_empty());
        // c1's effects undone; t's and c2's remain.
        let fx = read(&mut s, 5, &t, 7);
        assert_eq!(fx.replies[0].value, b"base");
        let fx = read(&mut s, 6, &t, 8);
        assert_eq!(fx.replies[0].value, b"");
        // Object 9 is exclusively held by the still-active sibling c2:
        // the parent must wait (Moss ancestor rule) until c2 commits
        // upward.
        let fx = read(&mut s, 7, &t, 9);
        assert!(fx.blocked);
        let fx = s.sub_commit(&c2);
        assert_eq!(fx.replies.len(), 1, "parent read unblocked by child commit");
        assert_eq!(fx.replies[0].value, b"c2");
        // Commit: only surviving updates land.
        s.commit_family(fam(1));
        assert_eq!(s.committed_value(ObjectId(7)), b"base");
        assert_eq!(s.committed_value(ObjectId(8)), b"");
        assert_eq!(s.committed_value(ObjectId(9)), b"c2");
    }

    #[test]
    fn nested_commit_inherits_locks_to_parent() {
        let mut s = server();
        let t = top(1);
        let c = t.child(1);
        write(&mut s, 1, &c, 7, b"from-child");
        s.sub_commit(&c);
        // Parent reads the child's (now inherited) value.
        let fx = read(&mut s, 2, &t, 7);
        assert_eq!(fx.replies[0].value, b"from-child");
        // Sibling-family writer still blocked until family end.
        let other = top(2);
        let fx = write(&mut s, 3, &other, 7, b"intruder");
        assert!(fx.blocked);
        let fx = s.commit_family(fam(1));
        assert_eq!(fx.replies.len(), 1, "intruder unblocked at family commit");
        assert_eq!(s.committed_value(ObjectId(7)), b"from-child");
        s.commit_family(fam(2));
        assert_eq!(s.committed_value(ObjectId(7)), b"intruder");
    }

    #[test]
    fn shared_readers_coexist() {
        let mut s = server();
        let t1 = top(1);
        let t2 = top(2);
        write(&mut s, 1, &t1, 7, b"v");
        s.commit_family(fam(1));
        let a = read(&mut s, 2, &t2, 7);
        let t3 = top(3);
        let b = read(&mut s, 3, &t3, 7);
        assert!(!a.blocked && !b.blocked);
        assert_eq!(a.replies[0].value, b"v");
        assert_eq!(b.replies[0].value, b"v");
    }

    #[test]
    fn aborting_a_blocked_family_removes_its_queued_ops() {
        let mut s = server();
        let t1 = top(1);
        let t2 = top(2);
        let t3 = top(3);
        write(&mut s, 1, &t1, 7, b"x");
        assert!(write(&mut s, 2, &t2, 7, b"y").blocked);
        assert!(read(&mut s, 3, &t3, 7).blocked);
        // t2 aborts while queued; t1 commits: only t3 completes.
        s.abort_family(fam(2));
        let fx = s.commit_family(fam(1));
        assert_eq!(fx.replies.len(), 1);
        assert_eq!(fx.replies[0].req, 3);
        assert_eq!(fx.replies[0].value, b"x");
    }

    #[test]
    fn paper_contention_pattern_second_txn_waits_for_drop_locks() {
        // §4.2's analysis: back-to-back transactions on one object;
        // the second waits until the first's commit drops the lock.
        let mut s = server();
        let t1 = top(1);
        let t2 = top(2);
        write(&mut s, 1, &t1, 42, b"first");
        let fx = write(&mut s, 2, &t2, 42, b"second");
        assert!(fx.blocked);
        assert_eq!(s.stats().lock_waits, 1);
        let fx = s.commit_family(fam(1));
        assert_eq!(fx.replies[0].req, 2);
        s.commit_family(fam(2));
        assert_eq!(s.committed_value(ObjectId(42)), b"second");
    }

    #[test]
    fn stats_count_operations() {
        let mut s = server();
        let t = top(1);
        write(&mut s, 1, &t, 1, b"a");
        read(&mut s, 2, &t, 1);
        read(&mut s, 3, &t, 2);
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 2);
        assert_eq!(st.joins, 1);
    }

    #[test]
    fn two_family_write_cycle_is_denied_not_queued() {
        let mut s = server();
        let (t1, t2) = (top(1), top(2));
        assert!(!write(&mut s, 1, &t1, 1, b"a").blocked);
        assert!(!write(&mut s, 2, &t2, 2, b"b").blocked);
        // t2 waits on t1's object: a plain wait, no cycle yet.
        let fx = write(&mut s, 3, &t2, 1, b"b1");
        assert!(fx.blocked && !fx.deadlock);
        // t1 asking for t2's object would close the cycle: denied.
        let fx = write(&mut s, 4, &t1, 2, b"a2");
        assert!(fx.deadlock, "cycle must be detected");
        assert!(!fx.blocked, "victim is not queued");
        assert_eq!(s.stats().deadlocks, 1);
        // The victim aborts; the survivor's queued write completes.
        let fx = s.abort_family(fam(1));
        assert_eq!(fx.replies.len(), 1, "t2's wait granted");
        let fx = s.commit_family(fam(2));
        assert!(fx.replies.is_empty());
        assert_eq!(s.committed_value(ObjectId(1)), b"b1");
        assert_eq!(s.committed_value(ObjectId(2)), b"b");
    }

    #[test]
    fn three_family_cycle_is_denied() {
        let mut s = server();
        let (t1, t2, t3) = (top(1), top(2), top(3));
        write(&mut s, 1, &t1, 1, b"a");
        write(&mut s, 2, &t2, 2, b"b");
        write(&mut s, 3, &t3, 3, b"c");
        assert!(write(&mut s, 4, &t1, 2, b"x").blocked); // 1 -> 2
        assert!(write(&mut s, 5, &t2, 3, b"y").blocked); // 2 -> 3
        let fx = write(&mut s, 6, &t3, 1, b"z"); // 3 -> 1 closes it
        assert!(fx.deadlock);
    }

    #[test]
    fn shared_waiters_do_not_false_positive() {
        let mut s = server();
        let (t1, t2) = (top(1), top(2));
        write(&mut s, 1, &t1, 1, b"a");
        // t2 queues a read behind t1's exclusive: 2 -> 1.
        assert!(read(&mut s, 2, &t2, 1).blocked);
        // t1 reading an object nobody holds is granted outright.
        let fx = read(&mut s, 3, &t1, 5);
        assert!(!fx.blocked && !fx.deadlock);
        // t1 reading t2-shared data: shared/shared never conflicts,
        // so no wait and no cycle.
        read(&mut s, 4, &t2, 6);
        let fx = read(&mut s, 5, &t1, 6);
        assert!(!fx.blocked && !fx.deadlock);
    }
}
