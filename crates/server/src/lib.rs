//! The Camelot data-server library.
//!
//! "To use Camelot, someone who possesses a database that he wishes to
//! make publicly available writes a data server process that controls
//! the database and allows access to client application processes."
//! (paper §2). A data server manages objects, serializes access by
//! locking, reports old/new value pairs to the disk manager for
//! undo/redo, joins transactions on first touch (Figure 1 step 4), and
//! answers the transaction manager's phase-one vote requests.
//!
//! This crate provides that server as a sans-io library:
//! [`DataServer::handle`] processes read/write operations and returns
//! the [`Effects`] the surrounding runtime must carry out (a
//! join-transaction call, log records for the disk manager, replies,
//! lock waits). The Moss-model lock manager lives in `camelot-locks`.

pub mod recovery;
pub mod server;

pub use recovery::{recover, RecoveredServer};
pub use server::{DataServer, Effects, OpReply, Request, ServerStats};
