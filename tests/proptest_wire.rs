//! Property-based tests of the socket wire codec.
//!
//! Three layers get hammered with randomized inputs:
//!
//! - the message codec: every [`TmMessage`] variant (including the
//!   non-blocking protocol's `NbInfo`-carrying ones) and every
//!   [`Envelope`] round-trips bit-exactly through its byte encoding;
//! - the frame codec: arbitrary payloads survive framing, any single
//!   corrupted byte is a *typed* error (never a panic, never a silent
//!   misparse), and truncation at every boundary reports `Truncated`;
//! - the stream reassembler: a frame sequence fed to [`FrameDecoder`]
//!   in arbitrary-size chunks — including byte-by-byte — yields
//!   exactly the original frames.

use proptest::prelude::*;

use camelot::net::msg::NbInfo;
use camelot::net::{
    decode_frame, encode_frame, Envelope, FrameDecoder, FrameError, NbSiteState, Outcome,
    TmMessage, Vote,
};
use camelot::types::wire::Wire;
use camelot::types::{FamilyId, SiteId, Tid};

fn site() -> impl Strategy<Value = SiteId> {
    any::<u32>().prop_map(SiteId)
}

fn tid() -> impl Strategy<Value = Tid> {
    (site(), any::<u64>(), prop::collection::vec(1u32..16, 0..4)).prop_map(|(origin, seq, path)| {
        Tid {
            family: FamilyId { origin, seq },
            path,
        }
    })
}

fn vote() -> impl Strategy<Value = Vote> {
    prop_oneof![Just(Vote::Yes), Just(Vote::No), Just(Vote::ReadOnly)]
}

fn outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![Just(Outcome::Committed), Just(Outcome::Aborted)]
}

fn nb_state() -> impl Strategy<Value = NbSiteState> {
    prop_oneof![
        Just(NbSiteState::Unknown),
        Just(NbSiteState::Prepared),
        Just(NbSiteState::Replicated),
        Just(NbSiteState::Committed),
        Just(NbSiteState::Aborted),
    ]
}

fn nb_info() -> impl Strategy<Value = NbInfo> {
    (
        prop::collection::vec(site(), 0..6),
        prop::collection::vec(site(), 0..6),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(sites, yes_votes, commit_quorum, abort_quorum)| NbInfo {
            sites,
            yes_votes,
            commit_quorum,
            abort_quorum,
        })
}

fn opt_nb_info() -> impl Strategy<Value = Option<NbInfo>> {
    (any::<bool>(), nb_info()).prop_map(|(some, info)| some.then_some(info))
}

/// Every one of the nineteen `TmMessage` variants, uniformly weighted.
fn message() -> impl Strategy<Value = TmMessage> {
    prop_oneof![
        (tid(), site()).prop_map(|(tid, coordinator)| TmMessage::Prepare { tid, coordinator }),
        (tid(), site(), vote()).prop_map(|(tid, from, vote)| TmMessage::VoteMsg {
            tid,
            from,
            vote
        }),
        tid().prop_map(|tid| TmMessage::Commit { tid }),
        tid().prop_map(|tid| TmMessage::Abort { tid }),
        (tid(), site()).prop_map(|(tid, from)| TmMessage::CommitAck { tid, from }),
        (tid(), site()).prop_map(|(tid, from)| TmMessage::Inquire { tid, from }),
        (tid(), outcome()).prop_map(|(tid, outcome)| TmMessage::InquireResp { tid, outcome }),
        (tid(), site(), nb_info()).prop_map(|(tid, coordinator, info)| TmMessage::NbPrepare {
            tid,
            coordinator,
            info
        }),
        (tid(), site(), vote()).prop_map(|(tid, from, vote)| TmMessage::NbVote { tid, from, vote }),
        (tid(), nb_info()).prop_map(|(tid, info)| TmMessage::NbReplicate { tid, info }),
        (tid(), site(), any::<bool>()).prop_map(|(tid, from, joined)| TmMessage::NbReplicateAck {
            tid,
            from,
            joined
        }),
        (tid(), outcome()).prop_map(|(tid, outcome)| TmMessage::NbOutcome { tid, outcome }),
        (tid(), site()).prop_map(|(tid, from)| TmMessage::NbOutcomeAck { tid, from }),
        (tid(), site()).prop_map(|(tid, from)| TmMessage::NbStatusReq { tid, from }),
        (tid(), site(), nb_state(), opt_nb_info()).prop_map(|(tid, from, state, info)| {
            TmMessage::NbStatus {
                tid,
                from,
                state,
                info,
            }
        }),
        (tid(), site()).prop_map(|(tid, from)| TmMessage::NbAbortJoinReq { tid, from }),
        (tid(), site(), any::<bool>()).prop_map(|(tid, from, joined)| TmMessage::NbAbortJoinResp {
            tid,
            from,
            joined
        }),
        tid().prop_map(|tid| TmMessage::NbForget { tid }),
        (tid(), outcome()).prop_map(|(tid, outcome)| TmMessage::SubResolved { tid, outcome }),
    ]
}

fn envelope() -> impl Strategy<Value = Envelope> {
    (
        site(),
        site(),
        any::<u64>(),
        message(),
        prop::collection::vec(message(), 0..4),
    )
        .prop_map(|(src, dst, seq, primary, piggyback)| Envelope {
            src,
            dst,
            seq,
            primary,
            piggyback,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrips(m in message()) {
        let bytes = m.to_bytes();
        prop_assert_eq!(TmMessage::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn envelope_roundtrips(env in envelope()) {
        let bytes = env.to_bytes();
        prop_assert_eq!(Envelope::from_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn truncated_envelope_is_error_at_every_cut(env in envelope(), cut in any::<usize>()) {
        // A strict prefix must fail (the codec requires full
        // consumption), and must fail as an error — never a panic.
        let bytes = env.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(Envelope::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn envelope_with_trailing_garbage_is_error(env in envelope(), extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = env.to_bytes();
        bytes.extend_from_slice(&extra);
        prop_assert!(Envelope::from_bytes(&bytes).is_err());
    }

    #[test]
    fn garbage_never_panics_decoders(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Err or Ok are both fine; the property is "no panic, no hang".
        let _ = TmMessage::from_bytes(&bytes);
        let _ = Envelope::from_bytes(&bytes);
        let _ = decode_frame(&bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn frame_roundtrips_arbitrary_payload(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let frame = encode_frame(&payload);
        let (decoded, consumed) = decode_frame(&frame).unwrap();
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn any_corrupted_byte_is_a_typed_error(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        index in any::<usize>(),
        mask in 1u8..255,
    ) {
        let clean = encode_frame(&payload);
        let index = index % clean.len();
        let mut frame = clean.clone();
        frame[index] ^= mask;
        let got = decode_frame(&frame);
        if index == 5 {
            // The flags byte is reserved and ignored: corruption there
            // is invisible to this codec version by design.
            prop_assert_eq!(got.unwrap().0, payload);
        } else {
            prop_assert!(got.is_err(), "flip at {} undetected", index);
        }
    }

    #[test]
    fn frame_truncation_at_every_boundary(payload in prop::collection::vec(any::<u8>(), 0..256), cut in any::<usize>()) {
        let frame = encode_frame(&payload);
        let cut = cut % frame.len();
        prop_assert_eq!(decode_frame(&frame[..cut]), Err(FrameError::Truncated));
    }

    #[test]
    fn decoder_reassembles_random_chunking(
        envs in prop::collection::vec(envelope(), 1..5),
        chunks in prop::collection::vec(1usize..9, 1..64),
    ) {
        // One TCP stream carrying several framed envelopes, delivered
        // in arbitrary-size reads.
        let mut stream = Vec::new();
        for env in &envs {
            stream.extend_from_slice(&encode_frame(&env.to_bytes()));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut chunk_i = 0;
        while pos < stream.len() {
            let n = chunks[chunk_i % chunks.len()].min(stream.len() - pos);
            chunk_i += 1;
            dec.extend(&stream[pos..pos + n]);
            pos += n;
            while let Some(payload) = dec.next_frame().unwrap() {
                got.push(Envelope::from_bytes(&payload).unwrap());
            }
        }
        prop_assert_eq!(got, envs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_poisoning_is_sticky_under_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        index in any::<usize>(),
        mask in 1u8..255,
    ) {
        let mut frame = encode_frame(&payload);
        let index = index % frame.len();
        frame[index] ^= mask;
        match decode_frame(&frame) {
            // Length corruption that *grows* the frame reads as "need
            // more bytes" in a stream; flags-byte corruption is
            // invisible by design. Neither poisons.
            Err(FrameError::Truncated) | Ok(_) => {}
            Err(e) => {
                let mut dec = FrameDecoder::new();
                dec.extend(&frame);
                prop_assert_eq!(dec.next_frame(), Err(e));
                // A poisoned stream stays poisoned: later clean frames
                // must not resurrect it (no resynchronization).
                dec.extend(&encode_frame(b"clean"));
                prop_assert_eq!(dec.next_frame(), Err(e));
            }
        }
    }
}
