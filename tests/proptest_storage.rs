//! Property-based tests of the storage substrate: WAL round trips,
//! torn-tail recovery, group-commit batcher invariants, and the data
//! server's serializability under randomized interleavings.

use proptest::prelude::*;

use camelot::locks::{Acquire, LockManager, Mode};
use camelot::server::{DataServer, Request};
use camelot::types::{FamilyId, Lsn, ObjectId, ServerId, SiteId, Tid, Time, Wire};
use camelot::wal::record::QuorumKind;
use camelot::wal::{
    BatchPolicy, BatcherAction, GroupCommitBatcher, LogRecord, MemStore, ReqId, Wal,
};

fn any_tid() -> impl Strategy<Value = Tid> {
    (1u32..5, 1u64..100, prop::collection::vec(1u32..4, 0..3)).prop_map(|(origin, seq, path)| Tid {
        family: FamilyId {
            origin: SiteId(origin),
            seq,
        },
        path,
    })
}

fn any_record() -> impl Strategy<Value = LogRecord> {
    let tid = any_tid();
    prop_oneof![
        (any_tid(), 1u32..5).prop_map(|(tid, c)| LogRecord::Prepared {
            tid,
            coordinator: SiteId(c)
        }),
        (any_tid(), prop::collection::vec(1u32..6, 0..3)).prop_map(|(tid, subs)| {
            LogRecord::Commit {
                tid,
                subs: subs.into_iter().map(SiteId).collect(),
            }
        }),
        any_tid().prop_map(|tid| LogRecord::Abort { tid }),
        any_tid().prop_map(|tid| LogRecord::End { tid }),
        (any_tid(), any::<bool>()).prop_map(|(tid, k)| LogRecord::NbQuorum {
            tid,
            kind: if k {
                QuorumKind::Commit
            } else {
                QuorumKind::Abort
            },
        }),
        (
            tid,
            1u32..4,
            1u64..50,
            prop::collection::vec(any::<u8>(), 0..24),
            prop::collection::vec(any::<u8>(), 0..24)
        )
            .prop_map(|(tid, srv, obj, old, new)| LogRecord::ServerUpdate {
                tid,
                server: ServerId(srv),
                object: ObjectId(obj),
                old,
                new,
            }),
        Just(LogRecord::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every record round-trips through its wire encoding.
    #[test]
    fn record_codec_roundtrip(rec in any_record()) {
        let bytes = rec.to_bytes();
        prop_assert_eq!(LogRecord::from_bytes(&bytes).unwrap(), rec);
    }

    /// Appended+forced records always recover, in order; a crash
    /// discards exactly the unforced suffix.
    #[test]
    fn wal_crash_recovers_durable_prefix(
        recs in prop::collection::vec(any_record(), 1..20),
        force_at in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut wal = Wal::new(MemStore::new());
        let mut durable = Vec::new();
        let mut pending = Vec::new();
        for (rec, force) in recs.iter().zip(force_at.iter().chain(std::iter::repeat(&false))) {
            wal.append(rec).unwrap();
            pending.push(rec.clone());
            if *force {
                wal.force().unwrap();
                durable.append(&mut pending);
            }
        }
        wal.store_mut().crash();
        let recovered: Vec<LogRecord> =
            wal.recover().unwrap().into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(recovered, durable);
    }

    /// The group-commit batcher satisfies every request exactly once,
    /// with a monotone durable watermark, under any policy.
    #[test]
    fn batcher_satisfies_each_request_once(
        lsns in prop::collection::vec(1u64..1000, 1..30),
        policy in prop_oneof![
            Just(BatchPolicy::Immediate),
            Just(BatchPolicy::Coalesce),
            Just(BatchPolicy::Window(camelot::types::Duration::from_millis(10))),
        ],
    ) {
        let mut b = GroupCommitBatcher::new(policy);
        let mut satisfied: Vec<u64> = Vec::new();
        let mut writes_in_flight = 0u32;
        let mut timers: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut last_durable = Lsn(0);
        let handle = |actions: Vec<BatcherAction>,
                          satisfied: &mut Vec<u64>,
                          writes: &mut u32,
                          timers: &mut Vec<u64>,
                          last: &mut Lsn| {
            for a in actions {
                match a {
                    BatcherAction::StartWrite { .. } => {
                        assert_eq!(*writes, 0, "two writes in flight");
                        *writes += 1;
                    }
                    BatcherAction::SetTimer { epoch, .. } => timers.push(epoch),
                    BatcherAction::Satisfied { reqs, durable } => {
                        assert!(durable >= *last, "watermark went backwards");
                        *last = durable;
                        satisfied.extend(reqs.into_iter().map(|r| r.0));
                    }
                }
            }
        };
        for (i, lsn) in lsns.iter().enumerate() {
            now += 1;
            let acts = b.request(ReqId(i as u64), Lsn(*lsn), Time(now));
            handle(acts, &mut satisfied, &mut writes_in_flight, &mut timers, &mut last_durable);
            // Alternate completing writes and firing timers.
            if writes_in_flight > 0 && i % 2 == 0 {
                writes_in_flight -= 1;
                now += 1;
                let acts = b.write_complete(Time(now));
                handle(acts, &mut satisfied, &mut writes_in_flight, &mut timers, &mut last_durable);
            }
            let due = std::mem::take(&mut timers);
            for epoch in due {
                now += 1;
                let acts = b.timer_fired(epoch, Time(now));
                handle(acts, &mut satisfied, &mut writes_in_flight, &mut timers, &mut last_durable);
            }
        }
        // Drain: complete writes until everything is satisfied.
        let mut guard = 0;
        while satisfied.len() < lsns.len() && guard < 100 {
            guard += 1;
            now += 1;
            if writes_in_flight > 0 {
                writes_in_flight -= 1;
                let acts = b.write_complete(Time(now));
                handle(acts, &mut satisfied, &mut writes_in_flight, &mut timers, &mut last_durable);
            }
            let due = std::mem::take(&mut timers);
            for epoch in due {
                let acts = b.timer_fired(epoch, Time(now));
                handle(acts, &mut satisfied, &mut writes_in_flight, &mut timers, &mut last_durable);
            }
        }
        satisfied.sort_unstable();
        let expected: Vec<u64> = (0..lsns.len() as u64).collect();
        prop_assert_eq!(satisfied, expected, "each request exactly once");
    }

    /// Lock-manager invariant under random operations: at most one
    /// non-ancestor-related exclusive holder per object.
    #[test]
    fn lock_manager_never_grants_conflicting_exclusives(
        ops in prop::collection::vec(
            (1u64..5, 1u64..4, any::<bool>(), any::<bool>()), 1..60),
    ) {
        let mut lm = LockManager::new();
        let mut live: Vec<FamilyId> = Vec::new();
        for (fam_seq, obj, exclusive, release) in ops {
            let fam = FamilyId { origin: SiteId(1), seq: fam_seq };
            let tid = Tid::top_level(fam);
            if release {
                lm.release_family(fam);
                live.retain(|f| *f != fam);
            } else {
                let mode = if exclusive { Mode::Exclusive } else { Mode::Shared };
                if lm.acquire(ObjectId(obj), &tid, mode) == Acquire::Granted
                    && !live.contains(&fam)
                {
                    live.push(fam);
                }
            }
            // Invariant: for every object, the exclusive holders are
            // totally ordered by ancestry (here: distinct top-level
            // tids may never co-hold X).
            for o in 1..4u64 {
                let holders = lm.holders(ObjectId(o));
                let exclusives: Vec<_> = holders
                    .iter()
                    .filter(|(_, m)| *m == Mode::Exclusive)
                    .collect();
                for a in &exclusives {
                    for b in &holders {
                        if a.0 == b.0 { continue; }
                        prop_assert!(
                            a.0.is_ancestor_of(&b.0) || b.0.is_ancestor_of(&a.0),
                            "conflicting holders on obj{}: {} and {}", o, a.0, b.0
                        );
                    }
                }
            }
        }
    }

    /// Serializability smoke: interleaved read-modify-write increments
    /// through the data server sum exactly.
    #[test]
    fn server_increments_serialize(order in prop::collection::vec(0usize..3, 3..30)) {
        let mut server = DataServer::new(SiteId(1), ServerId(1));
        let obj = ObjectId(9);
        // Three "clients", each repeatedly: begin -> read -> write+1
        // -> commit, interleaved according to `order`. The lock
        // manager forces each full read-modify-write to serialize, so
        // we model each client as doing its RMW atomically when it can
        // acquire the lock, else skipping (abort).
        let mut committed = 0u64;
        let mut seq = 0u64;
        for k in order {
            seq += 1;
            let fam = FamilyId { origin: SiteId(1), seq };
            let tid = Tid::top_level(fam);
            let _ = k;
            let read = server.handle(Request::Read { req: seq * 10, tid: tid.clone(), object: obj });
            if read.blocked {
                server.abort_family(fam);
                continue;
            }
            let cur = read.replies[0].value.clone();
            let n = if cur.is_empty() { 0 } else { u64::from_le_bytes(cur.try_into().unwrap()) };
            let w = server.handle(Request::Write {
                req: seq * 10 + 1,
                tid: tid.clone(),
                object: obj,
                value: (n + 1).to_le_bytes().to_vec(),
            });
            if w.blocked {
                server.abort_family(fam);
                continue;
            }
            server.commit_family(fam);
            committed += 1;
        }
        let v = server.committed_value(obj);
        let total = if v.is_empty() { 0 } else { u64::from_le_bytes(v.try_into().unwrap()) };
        prop_assert_eq!(total, committed, "every committed increment counted once");
    }
}
