//! Property-based test of Moss-model nested-transaction semantics
//! against an independent reference model.
//!
//! A random script opens/commits/aborts nested subtransactions
//! (depth-first, as a real single-threaded application would) and
//! writes objects at arbitrary nesting levels. The reference model
//! computes the expected final state directly from the script: a
//! write survives iff every enclosing subtransaction ended in commit
//! (and the family committed). The data server must agree — both in
//! the values read back *during* execution (read-your-writes through
//! the nesting) and in the committed state afterwards.

use std::collections::HashMap;

use proptest::prelude::*;

use camelot::server::{DataServer, Request};
use camelot::types::{FamilyId, ObjectId, ServerId, SiteId, Tid};

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Open a nested child under the current transaction.
    BeginChild,
    /// Write `val` to `obj` under the current transaction.
    Write { obj: u64, val: u8 },
    /// Read `obj` under the current transaction (checked against the
    /// model).
    Read { obj: u64 },
    /// End the current (nested) transaction with a commit.
    EndCommit,
    /// End the current (nested) transaction with an abort.
    EndAbort,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::BeginChild),
        4 => (0u64..4, any::<u8>()).prop_map(|(obj, val)| Step::Write { obj, val }),
        2 => (0u64..4).prop_map(|obj| Step::Read { obj }),
        2 => Just(Step::EndCommit),
        1 => Just(Step::EndAbort),
    ]
}

/// The reference model: an undo-log of scopes.
struct Model {
    /// Visible values per object (reflecting all writes by live
    /// scopes).
    current: HashMap<u64, u8>,
    /// One undo frame per open scope: the values to restore if the
    /// scope aborts.
    frames: Vec<HashMap<u64, Option<u8>>>,
}

impl Model {
    fn new() -> Model {
        Model {
            current: HashMap::new(),
            frames: vec![HashMap::new()], // Top-level frame.
        }
    }

    fn begin(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn write(&mut self, obj: u64, val: u8) {
        let frame = self.frames.last_mut().expect("a scope is open");
        frame
            .entry(obj)
            .or_insert_with(|| self.current.get(&obj).copied());
        self.current.insert(obj, val);
    }

    fn read(&self, obj: u64) -> Vec<u8> {
        match self.current.get(&obj) {
            Some(v) => vec![*v],
            None => Vec::new(),
        }
    }

    fn end_commit(&mut self) {
        // The child's pre-images merge into the parent frame (so a
        // later parent abort still undoes them).
        let child = self.frames.pop().expect("nested scope open");
        let parent = self.frames.last_mut().expect("parent exists");
        for (obj, pre) in child {
            parent.entry(obj).or_insert(pre);
        }
    }

    fn end_abort(&mut self) {
        let child = self.frames.pop().expect("nested scope open");
        for (obj, pre) in child {
            match pre {
                Some(v) => {
                    self.current.insert(obj, v);
                }
                None => {
                    self.current.remove(&obj);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nested_semantics_match_reference_model(
        script in prop::collection::vec(step(), 1..60),
        commit_family in any::<bool>(),
    ) {
        let site = SiteId(1);
        let mut server = DataServer::new(site, ServerId(1));
        let fam = FamilyId { origin: site, seq: 1 };
        let top = Tid::top_level(fam);

        let mut model = Model::new();
        let mut stack: Vec<Tid> = vec![top.clone()];
        let mut child_counters: Vec<u32> = vec![0];
        let mut req = 0u64;

        for s in script {
            match s {
                Step::BeginChild => {
                    if stack.len() >= 5 {
                        continue;
                    }
                    let n = {
                        let c = child_counters.last_mut().unwrap();
                        *c += 1;
                        *c
                    };
                    let child = stack.last().unwrap().child(n);
                    stack.push(child);
                    child_counters.push(0);
                    model.begin();
                }
                Step::Write { obj, val } => {
                    req += 1;
                    let fx = server.handle(Request::Write {
                        req,
                        tid: stack.last().unwrap().clone(),
                        object: ObjectId(obj),
                        value: vec![val],
                    });
                    prop_assert!(!fx.blocked, "depth-first nesting never blocks");
                    model.write(obj, val);
                }
                Step::Read { obj } => {
                    req += 1;
                    let fx = server.handle(Request::Read {
                        req,
                        tid: stack.last().unwrap().clone(),
                        object: ObjectId(obj),
                    });
                    prop_assert!(!fx.blocked);
                    prop_assert_eq!(
                        fx.replies[0].value.clone(),
                        model.read(obj),
                        "read-your-writes through nesting (obj {})", obj
                    );
                }
                Step::EndCommit => {
                    if stack.len() > 1 {
                        let tid = stack.pop().unwrap();
                        child_counters.pop();
                        server.sub_commit(&tid);
                        model.end_commit();
                    }
                }
                Step::EndAbort => {
                    if stack.len() > 1 {
                        let tid = stack.pop().unwrap();
                        child_counters.pop();
                        server.sub_abort(&tid);
                        model.end_abort();
                    }
                }
            }
        }
        // Close any scopes the script left open, committing them.
        while stack.len() > 1 {
            let tid = stack.pop().unwrap();
            server.sub_commit(&tid);
            model.end_commit();
        }
        // Resolve the family.
        if commit_family {
            server.commit_family(fam);
            for obj in 0..4u64 {
                prop_assert_eq!(
                    server.committed_value(ObjectId(obj)).to_vec(),
                    model.read(obj),
                    "committed state (obj {})", obj
                );
            }
        } else {
            server.abort_family(fam);
            for obj in 0..4u64 {
                prop_assert!(
                    server.committed_value(ObjectId(obj)).is_empty(),
                    "family abort must leave nothing (obj {})", obj
                );
            }
        }
        prop_assert_eq!(server.active_families(), 0);
    }
}
