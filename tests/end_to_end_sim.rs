//! Cross-crate integration tests on the deterministic simulator:
//! multi-site, multi-application scenarios checking end-to-end data
//! consistency, both commit protocols, and determinism.

use camelot::core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot::net::Outcome;
use camelot::node::{AppSpec, NetConfig, OpSpec, World, WorldConfig};
use camelot::sim::Scheduler;
use camelot::types::{Duration, ObjectId, ServerId, SiteId, Time};

const HOUR: Time = Time(3_600_000_000);

fn deterministic(sites: u32, seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::latency(sites, EngineConfig::default(), seed);
    cfg.net = NetConfig::deterministic();
    cfg
}

#[test]
fn three_sites_two_apps_interleave_safely() {
    // Two applications at different home sites write to overlapping
    // remote servers; everything must commit and the final values
    // must come from one of the committed transactions.
    let cfg = deterministic(3, 11);
    let mut world = World::new(cfg);
    let a = world.add_app(AppSpec {
        home: SiteId(1),
        ops: vec![
            OpSpec::write(SiteId(1), ServerId(1), ObjectId(10)),
            OpSpec::write(SiteId(3), ServerId(1), ObjectId(30)),
        ],
        mode: CommitMode::TwoPhase,
        reps: 10,
        think: Duration::from_millis(3),
    });
    let b = world.add_app(AppSpec {
        home: SiteId(2),
        ops: vec![
            OpSpec::write(SiteId(2), ServerId(1), ObjectId(20)),
            OpSpec::write(SiteId(3), ServerId(1), ObjectId(30)),
        ],
        mode: CommitMode::TwoPhase,
        reps: 10,
        think: Duration::from_millis(5),
    });
    let mut sched = Scheduler::new(11);
    world.start(&mut sched);
    assert!(world.run(&mut sched, HOUR));
    world.settle(&mut sched, Duration::from_secs(10));
    for app in [a, b] {
        assert_eq!(world.records(app).len(), 10);
        for r in world.records(app) {
            assert_eq!(r.outcome, Outcome::Committed);
        }
    }
    // The contended object holds the value of some committed txn.
    assert!(!world
        .committed_value(SiteId(3), ServerId(1), ObjectId(30))
        .is_empty());
    // No engine retains transaction state.
    for s in 1..=3 {
        assert_eq!(world.engine(SiteId(s)).live_families(), 0, "site{s}");
    }
}

#[test]
fn nonblocking_and_two_phase_mix() {
    let cfg = deterministic(3, 13);
    let mut world = World::new(cfg);
    let nb = world.add_app(AppSpec::minimal(
        SiteId(1),
        &[SiteId(2), SiteId(3)],
        true,
        CommitMode::NonBlocking,
        8,
    ));
    let tp = world.add_app(AppSpec {
        home: SiteId(2),
        ops: vec![OpSpec::write(SiteId(2), ServerId(1), ObjectId(99))],
        mode: CommitMode::TwoPhase,
        reps: 8,
        think: Duration::ZERO,
    });
    let mut sched = Scheduler::new(13);
    world.start(&mut sched);
    assert!(world.run(&mut sched, HOUR));
    world.settle(&mut sched, Duration::from_secs(10));
    for app in [nb, tp] {
        for r in world.records(app) {
            assert_eq!(r.outcome, Outcome::Committed);
        }
    }
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let run = |seed: u64| -> Vec<u64> {
        let mut cfg = WorldConfig::latency(2, EngineConfig::default(), seed);
        cfg.seed = seed;
        let mut world = World::new(cfg);
        let app = world.add_app(AppSpec::minimal(
            SiteId(1),
            &[SiteId(2)],
            true,
            CommitMode::TwoPhase,
            10,
        ));
        let mut sched = Scheduler::new(seed);
        world.start(&mut sched);
        assert!(world.run(&mut sched, HOUR));
        world
            .records(app)
            .iter()
            .map(|r| r.latency().as_micros())
            .collect()
    };
    assert_eq!(run(42), run(42), "same seed, same trace");
    assert_ne!(run(42), run(43), "different seed, different jitter");
}

#[test]
fn variants_rank_correctly_on_subordinate_forces() {
    // Per distributed update transaction, the subordinate's protocol
    // forces: optimized 1, semi/unoptimized 2. End-to-end check via
    // engine force counters.
    let mut forces = Vec::new();
    for variant in [
        TwoPhaseVariant::Optimized,
        TwoPhaseVariant::SemiOptimized,
        TwoPhaseVariant::Unoptimized,
    ] {
        let mut cfg = deterministic(2, 17);
        cfg.engine = EngineConfig::for_variant(variant);
        let mut world = World::new(cfg);
        world.add_app(AppSpec::minimal(
            SiteId(1),
            &[SiteId(2)],
            true,
            CommitMode::TwoPhase,
            10,
        ));
        let mut sched = Scheduler::new(17);
        world.start(&mut sched);
        assert!(world.run(&mut sched, HOUR));
        world.settle(&mut sched, Duration::from_secs(10));
        forces.push(world.engine(SiteId(2)).stats().forces);
    }
    assert_eq!(forces[0], 10, "optimized: one force per txn");
    assert_eq!(forces[1], 20, "semi-optimized: two forces per txn");
    assert_eq!(forces[2], 20, "unoptimized: two forces per txn");
}

#[test]
fn nonblocking_critical_path_counts_match_paper() {
    // 4 LF / 5 DG vs 2 LF / 3 DG: verify via engine counters over one
    // 1-subordinate update under each protocol.
    let run = |mode: CommitMode| -> (u64, u64) {
        let cfg = deterministic(2, 19);
        let mut world = World::new(cfg);
        world.add_app(AppSpec::minimal(SiteId(1), &[SiteId(2)], true, mode, 1));
        let mut sched = Scheduler::new(19);
        world.start(&mut sched);
        assert!(world.run(&mut sched, HOUR));
        world.settle(&mut sched, Duration::from_secs(20));
        let forces =
            world.engine(SiteId(1)).stats().forces + world.engine(SiteId(2)).stats().forces;
        let lazy = world.engine(SiteId(1)).stats().lazy_appends
            + world.engine(SiteId(2)).stats().lazy_appends;
        (forces, lazy)
    };
    let (tp_forces, tp_lazy) = run(CommitMode::TwoPhase);
    let (nb_forces, nb_lazy) = run(CommitMode::NonBlocking);
    // Two-phase: coordinator commit force + subordinate prepare force.
    assert_eq!(tp_forces, 2);
    assert_eq!(tp_lazy, 1, "the delayed commit record");
    // Non-blocking: begin + sub prepare + sub replicate + commit.
    assert_eq!(nb_forces, 4);
    assert_eq!(nb_lazy, 1, "the subordinate's lazy outcome record");
}

#[test]
fn throughput_world_saturates_not_crashes() {
    // Push the throughput configuration hard and verify it completes
    // with consistent data.
    let cfg = WorldConfig::throughput(5, true, 6, 23);
    let mut world = World::new(cfg);
    for k in 0..6u32 {
        let mut spec = AppSpec::minimal(SiteId(1), &[], true, CommitMode::TwoPhase, 30);
        spec.ops[0].server = ServerId(k + 1);
        spec.ops[0].object = ObjectId(k as u64);
        world.add_app(spec);
    }
    let mut sched = Scheduler::new(23);
    world.start(&mut sched);
    assert!(world.run(&mut sched, HOUR));
    world.settle(&mut sched, Duration::from_secs(10));
    for k in 0..6u32 {
        assert_eq!(world.records(k as usize).len(), 30);
        assert!(!world
            .committed_value(SiteId(1), ServerId(k + 1), ObjectId(k as u64))
            .is_empty());
    }
}
