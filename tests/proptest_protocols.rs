//! Property-based tests of the commitment protocols: atomicity and
//! agreement under randomized workloads, vote outcomes, message
//! interleavings (timer orders) and crash points.
//!
//! These drive the sans-io engines through `camelot_core::testkit`,
//! which delivers messages instantly and fires timers on demand — so
//! thousands of protocol schedules run in milliseconds.

use proptest::prelude::*;

use camelot::core::testkit::Net;
use camelot::core::{CommitMode, EngineConfig, TwoPhaseVariant};
use camelot::net::Outcome;
use camelot::types::{ServerId, SiteId};

const SRV: ServerId = ServerId(1);

/// What each subordinate site does in a scenario.
#[derive(Debug, Clone, Copy)]
enum SiteBehavior {
    Update,
    ReadOnly,
    Veto,
}

fn behavior() -> impl Strategy<Value = SiteBehavior> {
    prop_oneof![
        4 => Just(SiteBehavior::Update),
        2 => Just(SiteBehavior::ReadOnly),
        1 => Just(SiteBehavior::Veto),
    ]
}

fn variant() -> impl Strategy<Value = TwoPhaseVariant> {
    prop_oneof![
        Just(TwoPhaseVariant::Optimized),
        Just(TwoPhaseVariant::SemiOptimized),
        Just(TwoPhaseVariant::Unoptimized),
    ]
}

/// Explicit pin of the regression proptest once shrank to
/// (`behaviors = [ReadOnly], local = Update, v = Optimized, nb =
/// true` in `proptest_protocols.proptest-regressions`): a
/// non-blocking commit whose only remote participant is read-only
/// must still commit the local update — the read-only subordinate is
/// excluded from the replication quorum, leaving the coordinator's
/// own commit record as the (singleton) quorum.
#[test]
fn nonblocking_single_readonly_sub_commits_local_update() {
    let mut net = Net::new(2, EngineConfig::for_variant(TwoPhaseVariant::Optimized));
    let tid = net.begin(SiteId(1));
    net.update_op(SiteId(1), SRV, &tid);
    net.read_op(SiteId(2), SRV, &tid);
    let req = net.commit(SiteId(1), &tid, CommitMode::NonBlocking, vec![SiteId(2)]);
    assert_eq!(net.outcome_of(SiteId(1), req), Some(Outcome::Committed));
    net.assert_no_conflict(&tid.family);
    for s in [SiteId(1), SiteId(2)] {
        net.flush_lazy(s);
    }
    net.run_timers(200);
    for s in [SiteId(1), SiteId(2)] {
        assert_eq!(net.engine(s).live_families(), 0, "{s} keeps state");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Failure-free runs: the outcome is committed iff nobody vetoed,
    /// every participant agrees, and all state is cleaned up.
    #[test]
    fn two_phase_agreement_without_failures(
        behaviors in prop::collection::vec(behavior(), 0..4),
        local in behavior(),
        v in variant(),
        nb in any::<bool>(),
    ) {
        let n = behaviors.len() as u32 + 1;
        let mut net = Net::new(n, EngineConfig::for_variant(v));
        let tid = net.begin(SiteId(1));
        match local {
            SiteBehavior::Update => net.update_op(SiteId(1), SRV, &tid),
            SiteBehavior::ReadOnly => net.read_op(SiteId(1), SRV, &tid),
            SiteBehavior::Veto => net.veto_op(SiteId(1), SRV, &tid),
        }
        let mut subs = Vec::new();
        for (i, b) in behaviors.iter().enumerate() {
            let s = SiteId(i as u32 + 2);
            subs.push(s);
            match b {
                SiteBehavior::Update => net.update_op(s, SRV, &tid),
                SiteBehavior::ReadOnly => net.read_op(s, SRV, &tid),
                SiteBehavior::Veto => net.veto_op(s, SRV, &tid),
            }
        }
        let mode = if nb { CommitMode::NonBlocking } else { CommitMode::TwoPhase };
        let req = net.commit(SiteId(1), &tid, mode, subs.clone());
        let any_veto = std::iter::once(&local)
            .chain(behaviors.iter())
            .any(|b| matches!(b, SiteBehavior::Veto));
        let expected = if any_veto { Outcome::Aborted } else { Outcome::Committed };
        prop_assert_eq!(net.outcome_of(SiteId(1), req), Some(expected));
        // No site may disagree.
        net.assert_no_conflict(&tid.family);
        // Drain cleanup traffic: all descriptors eventually released.
        for s in std::iter::once(SiteId(1)).chain(subs.iter().copied()) {
            net.flush_lazy(s);
        }
        net.run_timers(200);
        for s in std::iter::once(SiteId(1)).chain(subs.iter().copied()) {
            prop_assert_eq!(net.engine(s).live_families(), 0, "{} keeps state", s);
        }
    }

    /// Non-blocking commitment with a coordinator crash at a random
    /// protocol stage: survivors must agree with each other, never
    /// exhibit split brain, and release their locks (no blocking),
    /// because a single failure cannot block the protocol.
    #[test]
    fn nonblocking_survives_random_coordinator_crash(
        crash_after_timers in 0usize..8,
        subs_n in 2u32..4,
    ) {
        let n = subs_n + 1;
        let mut net = Net::new(n, EngineConfig::default());
        let tid = net.begin(SiteId(1));
        net.update_op(SiteId(1), SRV, &tid);
        let subs: Vec<SiteId> = (2..=n).map(SiteId).collect();
        for s in &subs {
            net.update_op(*s, SRV, &tid);
        }
        net.commit(SiteId(1), &tid, CommitMode::NonBlocking, subs.clone());
        // The testkit runs the happy path synchronously; crashing at
        // different timer counts exercises cleanup/ack stages. The
        // in-flight crash cases are covered by the manual injection
        // tests in camelot-core; here we verify agreement regardless
        // of when the coordinator disappears.
        for _ in 0..crash_after_timers {
            net.fire_next_timer();
        }
        net.crash(SiteId(1));
        net.run_timers(100);
        net.assert_no_conflict(&tid.family);
        // Survivors resolved (they are never left blocked).
        for s in &subs {
            prop_assert!(
                net.engine(*s).resolution(&tid.family).is_some(),
                "{} still unresolved", s
            );
        }
    }

    /// Coordinator recovery after a random crash point reaches the
    /// same outcome as the survivors.
    #[test]
    fn recovered_coordinator_agrees(crash_after_timers in 0usize..6) {
        let mut net = Net::new(3, EngineConfig::default());
        let tid = net.begin(SiteId(1));
        net.update_op(SiteId(1), SRV, &tid);
        net.update_op(SiteId(2), SRV, &tid);
        net.update_op(SiteId(3), SRV, &tid);
        net.commit(SiteId(1), &tid, CommitMode::NonBlocking, vec![SiteId(2), SiteId(3)]);
        for _ in 0..crash_after_timers {
            net.fire_next_timer();
        }
        net.crash(SiteId(1));
        net.run_timers(80);
        net.restart(SiteId(1), EngineConfig::default());
        net.run_timers(80);
        net.assert_no_conflict(&tid.family);
        let o1 = net.engine(SiteId(1)).resolution(&tid.family);
        let o2 = net.engine(SiteId(2)).resolution(&tid.family);
        prop_assert!(o1.is_some(), "coordinator unresolved after recovery");
        prop_assert_eq!(o1, o2);
    }

    /// Two-phase commit with a random subordinate crash before commit:
    /// no split brain ever; and with presumed abort, a crashed-then-
    /// recovered subordinate that never prepared reads as aborted.
    #[test]
    fn two_phase_subordinate_crash_is_safe(which in 2u32..4) {
        let mut net = Net::new(3, EngineConfig::default());
        let tid = net.begin(SiteId(1));
        net.update_op(SiteId(1), SRV, &tid);
        net.update_op(SiteId(2), SRV, &tid);
        net.update_op(SiteId(3), SRV, &tid);
        // Crash one subordinate before the commit call: its vote never
        // arrives, the vote timeout aborts the transaction.
        net.crash(SiteId(which));
        let req = net.commit(SiteId(1), &tid, CommitMode::TwoPhase,
                             vec![SiteId(2), SiteId(3)]);
        net.run_timers(50);
        prop_assert_eq!(net.outcome_of(SiteId(1), req), Some(Outcome::Aborted));
        net.assert_no_conflict(&tid.family);
        // The crashed subordinate recovers and asks: presumed abort.
        net.restart(SiteId(which), EngineConfig::default());
        net.run_timers(50);
        net.assert_no_conflict(&tid.family);
    }
}
